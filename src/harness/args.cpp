#include "harness/args.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>

namespace fluxdiv::harness {

namespace {

std::vector<std::int64_t> parseIntList(const std::string& text) {
  std::vector<std::int64_t> values;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      values.push_back(std::stoll(item));
    }
  }
  return values;
}

std::string reprIntList(const std::vector<std::int64_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += std::to_string(values[i]);
  }
  return out;
}

} // namespace

void Args::addInt(const std::string& name, std::int64_t def,
                  std::string help) {
  Option opt;
  opt.kind = Kind::Int;
  opt.help = std::move(help);
  opt.intValue = def;
  opt.defaultRepr = std::to_string(def);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void Args::addDouble(const std::string& name, double def, std::string help) {
  Option opt;
  opt.kind = Kind::Double;
  opt.help = std::move(help);
  opt.doubleValue = def;
  opt.defaultRepr = std::to_string(def);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void Args::addString(const std::string& name, std::string def,
                     std::string help) {
  Option opt;
  opt.kind = Kind::String;
  opt.help = std::move(help);
  opt.defaultRepr = def;
  opt.stringValue = std::move(def);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void Args::addBool(const std::string& name, std::string help) {
  Option opt;
  opt.kind = Kind::Bool;
  opt.help = std::move(help);
  opt.defaultRepr = "false";
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void Args::addIntList(const std::string& name,
                      std::vector<std::int64_t> def, std::string help) {
  Option opt;
  opt.kind = Kind::IntList;
  opt.help = std::move(help);
  opt.defaultRepr = reprIntList(def);
  opt.listValue = std::move(def);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

bool Args::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printHelp(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw std::runtime_error("unknown option: --" + name);
    }
    Option& opt = it->second;
    if (opt.kind == Kind::Bool) {
      if (value.has_value()) {
        opt.boolValue = (*value == "1" || *value == "true");
      } else {
        opt.boolValue = true;
      }
      continue;
    }
    if (!value.has_value()) {
      if (i + 1 >= argc) {
        throw std::runtime_error("missing value for option: --" + name);
      }
      value = argv[++i];
    }
    switch (opt.kind) {
    case Kind::Int:
      opt.intValue = std::stoll(*value);
      break;
    case Kind::Double:
      opt.doubleValue = std::stod(*value);
      break;
    case Kind::String:
      opt.stringValue = *value;
      break;
    case Kind::IntList:
      opt.listValue = parseIntList(*value);
      break;
    case Kind::Bool:
      break; // handled above
    }
  }
  return true;
}

Args::Option& Args::require(const std::string& name, Kind kind) {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) {
    throw std::logic_error("option not registered with this type: " + name);
  }
  return it->second;
}

const Args::Option& Args::require(const std::string& name, Kind kind) const {
  return const_cast<Args*>(this)->require(name, kind);
}

std::int64_t Args::getInt(const std::string& name) const {
  return require(name, Kind::Int).intValue;
}

double Args::getDouble(const std::string& name) const {
  return require(name, Kind::Double).doubleValue;
}

const std::string& Args::getString(const std::string& name) const {
  return require(name, Kind::String).stringValue;
}

bool Args::getBool(const std::string& name) const {
  return require(name, Kind::Bool).boolValue;
}

const std::vector<std::int64_t>&
Args::getIntList(const std::string& name) const {
  return require(name, Kind::IntList).listValue;
}

void Args::printHelp(const std::string& program) const {
  std::cout << "usage: " << program << " [options]\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    std::cout << "  --" << name;
    if (opt.kind != Kind::Bool) {
      std::cout << " <value>";
    }
    std::cout << "\n      " << opt.help << " (default: " << opt.defaultRepr
              << ")\n";
  }
}

} // namespace fluxdiv::harness
