#include "harness/timer.hpp"

// Header-only today; this TU anchors the library target and is the natural
// home if timing ever grows platform-specific code paths.
