#pragma once
// Minimal command-line option parser for the bench/example binaries.
// Supports `--name value`, `--name=value`, and boolean `--flag`. Unknown
// options are an error so typos do not silently change experiment
// parameters.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fluxdiv::harness {

/// Declarative option set parsed from argv.
class Args {
public:
  /// Register an option with a default value and a help line. Call before
  /// parse(). Boolean options take no value on the command line.
  void addInt(const std::string& name, std::int64_t def, std::string help);
  void addDouble(const std::string& name, double def, std::string help);
  void addString(const std::string& name, std::string def, std::string help);
  void addBool(const std::string& name, std::string help);
  /// Comma-separated list of integers, e.g. `--threads 1,2,4,8`.
  void addIntList(const std::string& name, std::vector<std::int64_t> def,
                  std::string help);

  /// Parse argv. Returns false (after printing help) if `--help` was given.
  /// Throws std::runtime_error on unknown options or malformed values.
  bool parse(int argc, char** argv);

  [[nodiscard]] std::int64_t getInt(const std::string& name) const;
  [[nodiscard]] double getDouble(const std::string& name) const;
  [[nodiscard]] const std::string& getString(const std::string& name) const;
  [[nodiscard]] bool getBool(const std::string& name) const;
  [[nodiscard]] const std::vector<std::int64_t>&
  getIntList(const std::string& name) const;

  /// Print the registered options and their defaults.
  void printHelp(const std::string& program) const;

private:
  enum class Kind { Int, Double, String, Bool, IntList };
  struct Option {
    Kind kind = Kind::Int;
    std::string help;
    std::int64_t intValue = 0;
    double doubleValue = 0.0;
    std::string stringValue;
    bool boolValue = false;
    std::vector<std::int64_t> listValue;
    std::string defaultRepr;
  };
  Option& require(const std::string& name, Kind kind);
  const Option& require(const std::string& name, Kind kind) const;

  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

} // namespace fluxdiv::harness
