#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fluxdiv::harness {

SampleStats summarize(std::vector<double> samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sq = 0.0;
  for (double v : samples) {
    sq += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(sq / static_cast<double>(n));
  return s;
}

namespace {

// Interpolated order statistic of an already-sorted sample.
double sortedPercentile(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) {
    return 0.0;
  }
  pct = std::max(0.0, std::min(100.0, pct));
  const double pos =
      pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // namespace

double percentile(std::vector<double> samples, double pct) {
  std::sort(samples.begin(), samples.end());
  return sortedPercentile(samples, pct);
}

LatencySummary latencySummary(std::vector<double> samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.p50 = sortedPercentile(samples, 50.0);
  s.p90 = sortedPercentile(samples, 90.0);
  s.p99 = sortedPercentile(samples, 99.0);
  return s;
}

} // namespace fluxdiv::harness
