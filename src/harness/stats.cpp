#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fluxdiv::harness {

SampleStats summarize(std::vector<double> samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sq = 0.0;
  for (double v : samples) {
    sq += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(sq / static_cast<double>(n));
  return s;
}

} // namespace fluxdiv::harness
