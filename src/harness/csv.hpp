#pragma once
// Tiny CSV writer. Bench binaries optionally mirror their table output to a
// CSV file (--csv path) so figures can be re-plotted without re-running.

#include <fstream>
#include <string>
#include <vector>

namespace fluxdiv::harness {

/// Append-only CSV file writer with RFC-4180-style quoting.
class CsvWriter {
public:
  /// Open `path` for writing (truncates) and emit the header row. An empty
  /// path produces a disabled writer whose writeRow() is a no-op.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True if the file opened successfully.
  [[nodiscard]] bool enabled() const { return out_.is_open(); }

  void writeRow(const std::vector<std::string>& cells);

private:
  std::ofstream out_;
};

} // namespace fluxdiv::harness
