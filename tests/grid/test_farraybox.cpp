#include "grid/farraybox.hpp"

#include <cstdint>

#include <gtest/gtest.h>

namespace fluxdiv::grid {
namespace {

TEST(FArrayBox, LayoutIsColumnMajorComponentSlowest) {
  // The paper's data layout (Sec. III-C): [x, y, z, c], x unit-stride.
  // Dense pitch pins the packed strides of the seed layout exactly.
  const Box b(IntVect(0, 0, 0), IntVect(3, 4, 5));
  FArrayBox f(b, 2, Pitch::Dense);
  EXPECT_EQ(f.strideY(), 4);
  EXPECT_EQ(f.strideZ(), 4 * 5);
  EXPECT_EQ(f.strideC(), 4 * 5 * 6);
  EXPECT_EQ(f.size(), std::size_t(4 * 5 * 6 * 2));
  EXPECT_EQ(f.pitchSlack(), 0);

  f(IntVect(1, 0, 0), 0) = 7.0;
  EXPECT_EQ(f.dataPtr(0)[1], 7.0);
  f(IntVect(0, 1, 0), 0) = 8.0;
  EXPECT_EQ(f.dataPtr(0)[4], 8.0);
  f(IntVect(0, 0, 0), 1) = 9.0;
  EXPECT_EQ(f.dataPtr(1)[0], 9.0);
}

TEST(FArrayBox, PaddedPitchRoundsUpAndStaysConsistent) {
  const Box b(IntVect(0, 0, 0), IntVect(3, 4, 5));
  FArrayBox f(b, 2); // Pitch::Padded is the default
  EXPECT_EQ(f.pitch(), paddedPitch(4));
  EXPECT_EQ(f.pitch() % kSimdDoubles, 0);
  EXPECT_EQ(f.pitchSlack(), f.pitch() - 4);
  EXPECT_EQ(f.strideY(), f.pitch());
  EXPECT_EQ(f.strideZ(), f.pitch() * 5);
  EXPECT_EQ(f.strideC(), f.pitch() * 5 * 6);
  EXPECT_EQ(f.size(), static_cast<std::size_t>(f.strideC()) * 2);
  // Logical addressing is pitch-agnostic.
  f(IntVect(1, 2, 3), 1) = 7.0;
  EXPECT_EQ(f(IntVect(1, 2, 3), 1), 7.0);
  EXPECT_EQ(f.dataPtr(1)[f.offset(1, 2, 3)], 7.0);
}

TEST(FArrayBox, StorageIsAlignedWithAlignedRows) {
  // Both the allocation base and (under the default padded pitch) every
  // x-row base must sit on kFabAlignment — the pencil-kernel contract.
  FArrayBox f(Box::cube(5), 2);
  const auto base = reinterpret_cast<std::uintptr_t>(f.dataPtr(0));
  EXPECT_EQ(base % kFabAlignment, 0u);
  EXPECT_EQ(static_cast<std::size_t>(f.pitch()) * sizeof(Real) %
                kFabAlignment,
            0u);
  const auto row = reinterpret_cast<std::uintptr_t>(
      f.dataPtr(1) + f.offset(0, 3, 2));
  EXPECT_EQ(row % kFabAlignment, 0u);

  // Dense fabs keep the aligned base (rows may not be aligned).
  FArrayBox d(Box::cube(5), 2, Pitch::Dense);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.dataPtr(0)) % kFabAlignment,
            0u);
}

TEST(FArrayBox, IndexerMatchesOffsetForBothPitches) {
  const Box b(IntVect(-1, -2, -3), IntVect(3, 2, 1));
  for (Pitch pitch : {Pitch::Padded, Pitch::Dense}) {
    FArrayBox f(b, 1, pitch);
    const FabIndexer ix = f.indexer();
    forEachCell(b, [&](int i, int j, int k) {
      EXPECT_EQ(ix(i, j, k), f.offset(i, j, k));
    });
    EXPECT_EQ(ix.stride(0), 1);
    EXPECT_EQ(ix.stride(1), f.strideY());
    EXPECT_EQ(ix.stride(2), f.strideZ());
  }
}

TEST(FArrayBox, OffsetRespectsBoxOrigin) {
  const Box b(IntVect(-2, -2, -2), IntVect(2, 2, 2));
  FArrayBox f(b, 1, Pitch::Dense);
  EXPECT_EQ(f.offset(-2, -2, -2), 0);
  EXPECT_EQ(f.offset(-1, -2, -2), 1);
  EXPECT_EQ(f.offset(-2, -1, -2), 5);
  EXPECT_EQ(f.offset(2, 2, 2), 5 * 5 * 5 - 1);
}

TEST(FArrayBox, ZeroInitializedOnDefine) {
  FArrayBox f(Box::cube(4), 3);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_EQ(f.dataPtr(0)[i], 0.0);
  }
}

TEST(FArrayBox, SetVal) {
  FArrayBox f(Box::cube(4), 2);
  f.setVal(3.5);
  EXPECT_EQ(f(IntVect(2, 2, 2), 1), 3.5);
  f.setVal(-1.0, Box::cube(2), 0);
  EXPECT_EQ(f(IntVect(0, 0, 0), 0), -1.0);
  EXPECT_EQ(f(IntVect(2, 0, 0), 0), 3.5);
  EXPECT_EQ(f(IntVect(0, 0, 0), 1), 3.5); // other component untouched
}

TEST(FArrayBox, CopyRegion) {
  FArrayBox src(Box::cube(4), 2);
  FArrayBox dst(Box::cube(4), 2);
  forEachCell(src.box(), [&](int i, int j, int k) {
    src(i, j, k, 0) = i + 10 * j + 100 * k;
    src(i, j, k, 1) = -src(i, j, k, 0);
  });
  dst.copy(src, Box::cube(2, IntVect(1, 1, 1)), 0, 0, 2);
  EXPECT_EQ(dst(1, 1, 1, 0), 111.0);
  EXPECT_EQ(dst(2, 2, 2, 1), -222.0);
  EXPECT_EQ(dst(0, 0, 0, 0), 0.0); // outside region untouched
}

TEST(FArrayBox, CopyShiftedImplementsPeriodicImage) {
  // Destination ghost row at i = -1 sourced from i = 3 (shift +4).
  FArrayBox src(Box::cube(4), 1);
  FArrayBox dst(src.box().grow(1), 1);
  forEachCell(src.box(), [&](int i, int j, int k) {
    src(i, j, k, 0) = i + 10 * j + 100 * k;
  });
  const Box ghostRow(IntVect(-1, 0, 0), IntVect(-1, 3, 3));
  dst.copyShifted(src, ghostRow, IntVect(4, 0, 0), 0, 0, 1);
  EXPECT_EQ(dst(-1, 2, 1, 0), src(3, 2, 1, 0));
}

TEST(FArrayBox, CopyComponentRemap) {
  FArrayBox src(Box::cube(2), 3);
  FArrayBox dst(Box::cube(2), 3);
  src.setVal(5.0);
  dst.copy(src, src.box(), /*srcComp=*/2, /*destComp=*/0, 1);
  EXPECT_EQ(dst(0, 0, 0, 0), 5.0);
  EXPECT_EQ(dst(0, 0, 0, 2), 0.0);
}

TEST(FArrayBox, PlusScales) {
  FArrayBox a(Box::cube(2), 1);
  FArrayBox b(Box::cube(2), 1);
  a.setVal(1.0);
  b.setVal(2.0);
  a.plus(b, -0.5, a.box());
  EXPECT_EQ(a(1, 1, 1, 0), 0.0);
}

TEST(FArrayBox, SumOverRegion) {
  FArrayBox f(Box::cube(4), 1);
  f.setVal(2.0);
  EXPECT_EQ(f.sum(Box::cube(2), 0), 16.0);
  EXPECT_EQ(f.sum(f.box(), 0), 128.0);
}

TEST(FArrayBox, MaxAbsDiff) {
  FArrayBox a(Box::cube(4), 2);
  FArrayBox b(Box::cube(4), 2);
  a.setVal(1.0);
  b.setVal(1.0);
  EXPECT_EQ(FArrayBox::maxAbsDiff(a, b, a.box()), 0.0);
  b(IntVect(3, 3, 3), 1) = 4.0;
  EXPECT_EQ(FArrayBox::maxAbsDiff(a, b, a.box()), 3.0);
  // Diff restricted to a region that excludes the perturbation.
  EXPECT_EQ(FArrayBox::maxAbsDiff(a, b, Box::cube(2)), 0.0);
}

TEST(FArrayBox, RedefineReshapes) {
  FArrayBox f(Box::cube(4), 1);
  f.setVal(1.0);
  f.define(Box::cube(8), 2);
  EXPECT_EQ(f.nComp(), 2);
  EXPECT_EQ(f.box(), Box::cube(8));
  EXPECT_EQ(f(0, 0, 0, 0), 0.0); // fresh zero storage
}

} // namespace
} // namespace fluxdiv::grid
