#include "grid/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fluxdiv::grid {
namespace {

class CheckpointTest : public testing::Test {
protected:
  std::string path_ = testing::TempDir() + "fluxdiv_test.ckpt";
  void TearDown() override { std::remove(path_.c_str()); }
};

LevelData makeLevel() {
  ProblemDomain dom(Box::cube(16), std::array<bool, 3>{true, false, true});
  DisjointBoxLayout dbl(dom, 8);
  LevelData ld(dbl, 3, 2);
  for (std::size_t b = 0; b < ld.size(); ++b) {
    FArrayBox& fab = ld[b];
    for (int c = 0; c < 3; ++c) {
      Real* p = fab.dataPtr(c);
      forEachCell(fab.box(), [&](int i, int j, int k) {
        p[fab.offset(i, j, k)] =
            0.1 * i + 7.0 * j - 0.03 * k + 100.0 * c + double(b);
      });
    }
  }
  return ld;
}

TEST_F(CheckpointTest, RoundTripIsBitExact) {
  LevelData original = makeLevel();
  writeCheckpoint(path_, original);
  LevelData restored = readCheckpoint(path_);

  ASSERT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.nComp(), 3);
  EXPECT_EQ(restored.nGhost(), 2);
  EXPECT_EQ(restored.layout().domain().box(), Box::cube(16));
  EXPECT_TRUE(restored.layout().domain().isPeriodic(0));
  EXPECT_FALSE(restored.layout().domain().isPeriodic(1));
  for (std::size_t b = 0; b < original.size(); ++b) {
    // Full fabs, ghosts included.
    EXPECT_EQ(FArrayBox::maxAbsDiff(original[b], restored[b],
                                    original[b].box()),
              0.0);
  }
}

TEST_F(CheckpointTest, PayloadStaysDenseDespitePaddedFabStorage) {
  // Fabs allocate with a padded x-pitch, but the checkpoint format is
  // pitch-independent: the writer emits logical rows only, so the file
  // holds exactly numPts * ncomp doubles per fab plus a bounded header —
  // none of the pad-lane slack.
  LevelData original = makeLevel();
  std::uintmax_t denseBytes = 0;
  std::uintmax_t slackBytes = 0;
  for (std::size_t b = 0; b < original.size(); ++b) {
    const FArrayBox& fab = original[b];
    denseBytes += static_cast<std::uintmax_t>(fab.box().numPts()) *
                  static_cast<std::uintmax_t>(fab.nComp()) * sizeof(Real);
    slackBytes += fab.bytes() - static_cast<std::uintmax_t>(
                                    fab.box().numPts()) *
                                    static_cast<std::uintmax_t>(fab.nComp()) *
                                    sizeof(Real);
  }
  ASSERT_GT(slackBytes, 0u) << "boxes happen to be pad-aligned; pick an "
                               "extent that is not a SIMD multiple";
  writeCheckpoint(path_, original);
  const std::uintmax_t fileBytes = std::filesystem::file_size(path_);
  EXPECT_GE(fileBytes, denseBytes);
  EXPECT_LT(fileBytes, denseBytes + 4096) << "pad lanes leaked to disk";
}

TEST_F(CheckpointTest, RestoredLevelExchangesCorrectly) {
  LevelData original = makeLevel();
  writeCheckpoint(path_, original);
  LevelData restored = readCheckpoint(path_);
  // The rebuilt copier must work: exchange and verify an interior ghost.
  restored.exchange();
  EXPECT_EQ(restored[0](8, 3, 3, 0), restored[1](8, 3, 3, 0));
}

TEST_F(CheckpointTest, RejectsCorruptMagic) {
  LevelData original = makeLevel();
  writeCheckpoint(path_, original);
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.write("XXXX", 4);
  }
  EXPECT_THROW((void)readCheckpoint(path_), std::runtime_error);
}

TEST_F(CheckpointTest, RejectsTruncatedFile) {
  LevelData original = makeLevel();
  writeCheckpoint(path_, original);
  // Truncate to half size.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.close();
  std::filesystem::resize_file(path_, static_cast<std::uintmax_t>(size) / 2);
  EXPECT_THROW((void)readCheckpoint(path_), std::runtime_error);
}

TEST_F(CheckpointTest, MissingFileThrows) {
  EXPECT_THROW((void)readCheckpoint(testing::TempDir() + "no-such.ckpt"),
               std::runtime_error);
}

} // namespace
} // namespace fluxdiv::grid
