#include "grid/bc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fluxdiv::grid {
namespace {

/// Non-periodic layout over a 16^3 domain split into 8^3 boxes.
DisjointBoxLayout nonPeriodicLayout() {
  return DisjointBoxLayout(
      ProblemDomain(Box::cube(16), /*periodicAll=*/false), 8);
}

LevelData makeLevel(const DisjointBoxLayout& dbl, int ncomp = 5,
                    int nghost = 2) {
  LevelData ld(dbl, ncomp, nghost);
  for (std::size_t b = 0; b < ld.size(); ++b) {
    for (int c = 0; c < ncomp; ++c) {
      forEachCell(ld.validBox(b), [&](int i, int j, int k) {
        ld[b](i, j, k, c) = 1.0 + i + 10.0 * j + 100.0 * k + 0.5 * c;
      });
    }
  }
  ld.exchange(); // interior ghosts (non-periodic sides untouched)
  return ld;
}

TEST(BoundaryFiller, RejectsBcOnPeriodicDirection) {
  DisjointBoxLayout periodic(ProblemDomain(Box::cube(16)), 8);
  EXPECT_THROW(
      BoundaryFiller(periodic,
                     BoundarySpec::uniform(BCType::Reflective)),
      std::invalid_argument);
}

TEST(BoundaryFiller, ReflectiveMirrorsAcrossLowFace) {
  auto dbl = nonPeriodicLayout();
  LevelData ld = makeLevel(dbl);
  BoundaryFiller bc(dbl, BoundarySpec::uniform(BCType::Reflective));
  bc.fill(ld);
  // Box 0 touches the low x face: ghost(-1,j,k) == valid(0,j,k) etc.
  EXPECT_EQ(ld[0](-1, 3, 4, 0), ld[0](0, 3, 4, 0));
  EXPECT_EQ(ld[0](-2, 3, 4, 2), ld[0](1, 3, 4, 2));
  // High z face of the last box.
  const std::size_t last = ld.size() - 1;
  EXPECT_EQ(ld[last](12, 12, 16, 1), ld[last](12, 12, 15, 1));
  EXPECT_EQ(ld[last](12, 12, 17, 1), ld[last](12, 12, 14, 1));
}

TEST(BoundaryFiller, ReflectiveWallNegatesNormalVelocityOnly) {
  auto dbl = nonPeriodicLayout();
  LevelData ld = makeLevel(dbl);
  BoundaryFiller bc(dbl, BoundarySpec::uniform(BCType::ReflectiveWall));
  bc.fill(ld);
  // Low x face: component 1 (= u) negated, others mirrored evenly.
  EXPECT_EQ(ld[0](-1, 3, 4, 1), -ld[0](0, 3, 4, 1));
  EXPECT_EQ(ld[0](-1, 3, 4, 0), ld[0](0, 3, 4, 0));
  EXPECT_EQ(ld[0](-1, 3, 4, 2), ld[0](0, 3, 4, 2));
  // Low y face: component 2 (= v) negated.
  EXPECT_EQ(ld[0](3, -1, 4, 2), -ld[0](3, 0, 4, 2));
  EXPECT_EQ(ld[0](3, -1, 4, 1), ld[0](3, 0, 4, 1));
}

TEST(BoundaryFiller, ExtrapolateIsExactForCubicProfiles) {
  auto dbl = nonPeriodicLayout();
  LevelData ld(dbl, 1, 2);
  auto cubic = [](int i) {
    const double x = i;
    return 0.5 * x * x * x - x * x + 2.0 * x - 3.0;
  };
  for (std::size_t b = 0; b < ld.size(); ++b) {
    forEachCell(ld.validBox(b), [&](int i, int j, int k) {
      ld[b](i, j, k, 0) = cubic(i) + 0.01 * j + 0.0001 * k;
    });
  }
  ld.exchange();
  BoundaryFiller bc(dbl, BoundarySpec::uniform(BCType::Extrapolate));
  bc.fill(ld);
  // Ghosts beyond the low/high x faces continue the cubic exactly.
  EXPECT_NEAR(ld[0](-1, 3, 4, 0), cubic(-1) + 0.03 + 0.0004, 1e-10);
  EXPECT_NEAR(ld[0](-2, 3, 4, 0), cubic(-2) + 0.03 + 0.0004, 1e-10);
  const std::size_t lastX = 1; // box (1,0,0) holds the high-x boundary
  EXPECT_NEAR(ld[lastX](16, 3, 4, 0), cubic(16) + 0.03 + 0.0004, 1e-9);
  EXPECT_NEAR(ld[lastX](17, 3, 4, 0), cubic(17) + 0.03 + 0.0004, 1e-9);
}

TEST(BoundaryFiller, DirichletTargetsFaceValue) {
  auto dbl = nonPeriodicLayout();
  LevelData ld = makeLevel(dbl, 1);
  const Real target = 7.5;
  BoundaryFiller bc(dbl,
                    BoundarySpec::uniform(BCType::Dirichlet, target));
  bc.fill(ld);
  // Linear fill: (ghost + interior)/2 == target at the face.
  EXPECT_NEAR(0.5 * (ld[0](-1, 3, 4, 0) + ld[0](0, 3, 4, 0)), target,
              1e-13);
}

TEST(BoundaryFiller, CornersAreConsistentAfterDimensionSweep) {
  auto dbl = nonPeriodicLayout();
  LevelData ld = makeLevel(dbl, 1);
  BoundaryFiller bc(dbl, BoundarySpec::uniform(BCType::Reflective));
  bc.fill(ld);
  // Corner ghost (-1,-1,-1) must equal the triple mirror of (0,0,0).
  EXPECT_EQ(ld[0](-1, -1, -1, 0), ld[0](0, 0, 0, 0));
  EXPECT_EQ(ld[0](-2, -1, -2, 0), ld[0](1, 0, 1, 0));
}

TEST(BoundaryFiller, NoneLeavesGhostsUntouched) {
  auto dbl = nonPeriodicLayout();
  LevelData ld = makeLevel(dbl, 1);
  const Real sentinel = ld[0](-1, 3, 4, 0); // whatever exchange left (0)
  BoundaryFiller bc(dbl, BoundarySpec{}); // all None
  bc.fill(ld);
  EXPECT_EQ(ld[0](-1, 3, 4, 0), sentinel);
}

TEST(BoundaryFiller, MixedSpecPerSide) {
  auto dbl = nonPeriodicLayout();
  LevelData ld = makeLevel(dbl, 1);
  BoundarySpec spec;
  spec.type[0] = {BCType::Reflective, BCType::Extrapolate};
  BoundaryFiller bc(dbl, spec);
  bc.fill(ld);
  EXPECT_EQ(ld[0](-1, 3, 4, 0), ld[0](0, 3, 4, 0)); // low x reflective
  // y/z ghosts outside the domain stay unfilled (None).
  EXPECT_EQ(ld[0](3, -1, 4, 0), 0.0);
}

} // namespace
} // namespace fluxdiv::grid
