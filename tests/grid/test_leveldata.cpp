#include "grid/leveldata.hpp"

#include <gtest/gtest.h>

namespace fluxdiv::grid {
namespace {

/// Deterministic global field used to verify exchange correctness.
Real fieldValue(int i, int j, int k, int c) {
  return i + 1000.0 * j + 1000000.0 * k + 0.25 * c;
}

/// Fill valid regions with the global field.
void fillValid(LevelData& ld) {
  for (std::size_t b = 0; b < ld.size(); ++b) {
    FArrayBox& fab = ld[b];
    for (int c = 0; c < ld.nComp(); ++c) {
      forEachCell(ld.validBox(b), [&](int i, int j, int k) {
        fab(i, j, k, c) = fieldValue(i, j, k, c);
      });
    }
  }
}

int wrap(int v, int n) { return ((v % n) + n) % n; }

TEST(LevelData, AllocatesGhostedFabs) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData ld(dbl, 5, 2);
  EXPECT_EQ(ld.size(), 8u);
  EXPECT_EQ(ld[0].box(), Box::cube(16).grow(2));
  EXPECT_EQ(ld[0].nComp(), 5);
}

TEST(LevelData, ExchangeFillsAllGhostsWithPeriodicImages) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData ld(dbl, 2, 2);
  fillValid(ld);
  ld.exchange();
  const int n = 32;
  for (std::size_t b = 0; b < ld.size(); ++b) {
    const FArrayBox& fab = ld[b];
    for (int c = 0; c < 2; ++c) {
      forEachCell(fab.box(), [&](int i, int j, int k) {
        const Real expect =
            fieldValue(wrap(i, n), wrap(j, n), wrap(k, n), c);
        ASSERT_EQ(fab(i, j, k, c), expect)
            << "box " << b << " cell (" << i << ',' << j << ',' << k
            << ") comp " << c;
      });
    }
  }
}

TEST(LevelData, ExchangeHandlesSingleBoxSelfWrap) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 8);
  LevelData ld(dbl, 1, 2);
  fillValid(ld);
  ld.exchange();
  const FArrayBox& fab = ld[0];
  EXPECT_EQ(fab(-1, 0, 0, 0), fieldValue(7, 0, 0, 0));
  EXPECT_EQ(fab(8, 3, 2, 0), fieldValue(0, 3, 2, 0));
  EXPECT_EQ(fab(-2, -2, -2, 0), fieldValue(6, 6, 6, 0)); // corner ghost
}

TEST(LevelData, CellAccounting) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData ld(dbl, 1, 2);
  EXPECT_EQ(ld.totalCellsValid(), 32 * 32 * 32);
  EXPECT_EQ(ld.totalCellsAllocated(), 8 * 20 * 20 * 20);
  // Fig. 1 ratio for N=16, g=2, D=3: (1 + 4/16)^3 = 1.953125
  const double ratio = double(ld.totalCellsAllocated()) /
                       double(ld.totalCellsValid());
  EXPECT_NEAR(ratio, 1.953125, 1e-12);
}

TEST(LevelData, ExchangeBytesMatchesCopierPlan) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData ld(dbl, 5, 2);
  // Ghost cells per box: allocated - valid.
  const std::int64_t ghostCells = 8 * (20 * 20 * 20 - 16 * 16 * 16);
  EXPECT_EQ(ld.exchangeBytes(),
            static_cast<std::size_t>(ghostCells) * 5 * sizeof(Real));
}

TEST(LevelData, CopyToFinerDecomposition) {
  ProblemDomain dom(Box::cube(32));
  LevelData coarseBoxes(DisjointBoxLayout(dom, 32), 2, 2);
  LevelData fineBoxes(DisjointBoxLayout(dom, 8), 2, 2);
  fillValid(coarseBoxes);
  coarseBoxes.copyTo(fineBoxes);
  for (std::size_t b = 0; b < fineBoxes.size(); ++b) {
    for (int c = 0; c < 2; ++c) {
      forEachCell(fineBoxes.validBox(b), [&](int i, int j, int k) {
        ASSERT_EQ(fineBoxes[b](i, j, k, c), fieldValue(i, j, k, c));
      });
    }
  }
}

TEST(LevelData, MaxAbsDiffValidAcrossLayouts) {
  ProblemDomain dom(Box::cube(16));
  LevelData a(DisjointBoxLayout(dom, 16), 1, 2);
  LevelData b(DisjointBoxLayout(dom, 8), 1, 2);
  fillValid(a);
  fillValid(b);
  EXPECT_EQ(LevelData::maxAbsDiffValid(a, b), 0.0);
  b[0](IntVect(0, 0, 0), 0) += 2.5;
  EXPECT_EQ(LevelData::maxAbsDiffValid(a, b), 2.5);
}

TEST(LevelData, ExchangeOnAnisotropicBoxes) {
  ProblemDomain dom(Box(IntVect::zero(), IntVect(15, 7, 7)));
  DisjointBoxLayout dbl(dom, IntVect(8, 4, 8));
  LevelData ld(dbl, 1, 2);
  fillValid(ld);
  ld.exchange();
  const FArrayBox& fab = ld[0];
  forEachCell(fab.box(), [&](int i, int j, int k) {
    const Real expect = fieldValue(((i % 16) + 16) % 16,
                                   ((j % 8) + 8) % 8,
                                   ((k % 8) + 8) % 8, 0);
    ASSERT_EQ(fab(i, j, k, 0), expect);
  });
}

TEST(LevelData, CopierRejectsOversizedGhost) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  EXPECT_THROW(LevelData(dbl, 1, 17), std::invalid_argument);
}

TEST(LevelData, AsyncExchangeMatchesExchange) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData ref(dbl, 3, 2);
  LevelData async(dbl, 3, 2);
  fillValid(ref);
  fillValid(async);
  ref.exchange();
  AsyncExchange ax = async.exchangeAsync();
  ASSERT_GT(ax.opCount(), 0u);
  // Run the plan in reverse order: ops are independent, so any order must
  // deliver the exact exchange() result.
  for (std::size_t i = ax.opCount(); i-- > 0;) {
    ax.runOp(i);
  }
  EXPECT_TRUE(ax.done());
  for (std::size_t b = 0; b < ref.size(); ++b) {
    EXPECT_EQ(FArrayBox::maxAbsDiff(ref[b], async[b], ref[b].box()), 0.0)
        << "box " << b;
  }
}

TEST(LevelData, AsyncExchangePendingOpsTickDownPerDestBox) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData ld(dbl, 1, 2);
  fillValid(ld);
  AsyncExchange ax = ld.exchangeAsync();
  // Every box has ghost faces to fill, so none is ready at the start.
  for (std::size_t b = 0; b < ld.size(); ++b) {
    EXPECT_GT(ax.pendingOps(b), 0) << "box " << b;
    EXPECT_FALSE(ax.boxReady(b)) << "box " << b;
  }
  std::vector<int> before(ld.size());
  for (std::size_t b = 0; b < ld.size(); ++b) {
    before[b] = ax.pendingOps(b);
  }
  const std::size_t dest = ax.op(0).destBox;
  ax.runOp(0);
  EXPECT_EQ(ax.pendingOps(dest), before[dest] - 1);
  ax.finish();
  EXPECT_TRUE(ax.done());
  for (std::size_t b = 0; b < ld.size(); ++b) {
    EXPECT_TRUE(ax.boxReady(b)) << "box " << b;
  }
}

TEST(LevelData, AsyncExchangeRunOpIsIdempotent) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData ld(dbl, 1, 2);
  fillValid(ld);
  AsyncExchange ax = ld.exchangeAsync();
  const std::size_t dest = ax.op(0).destBox;
  const int before = ax.pendingOps(dest);
  ax.runOp(0);
  ax.runOp(0); // second claim must lose the CAS and change nothing
  EXPECT_EQ(ax.pendingOps(dest), before - 1);
  ax.finish();
  EXPECT_TRUE(ax.done());
}

TEST(LevelData, AsyncExchangeWithoutGhostsIsEmptyAndDone) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData ld(dbl, 2, 0);
  AsyncExchange ax = ld.exchangeAsync();
  EXPECT_EQ(ax.opCount(), 0u);
  EXPECT_TRUE(ax.done());
  EXPECT_NO_THROW(ax.finish());
}

TEST(LevelData, ExchangePlanHasNoEmptyOpsAndBytesAgree) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData ld(dbl, 5, 2);
  AsyncExchange ax = ld.exchangeAsync();
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < ax.opCount(); ++i) {
    const CopyOp& op = ax.op(i);
    EXPECT_FALSE(op.destRegion.empty()) << "op " << i;
    bytes += static_cast<std::size_t>(op.destRegion.numPts()) * 5 *
             sizeof(Real);
  }
  EXPECT_EQ(bytes, ld.exchangeBytes());
}

TEST(LevelData, DensePitchExchangeMatchesPadded) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  LevelData padded(dbl, 2, 2, Pitch::Padded);
  LevelData dense(dbl, 2, 2, Pitch::Dense);
  fillValid(padded);
  fillValid(dense);
  padded.exchange();
  dense.exchange();
  for (std::size_t b = 0; b < padded.size(); ++b) {
    EXPECT_EQ(
        FArrayBox::maxAbsDiff(padded[b], dense[b], padded[b].box()), 0.0)
        << "box " << b;
  }
}

TEST(LevelData, DeferredInitIsUsableAfterExplicitFill) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16);
  // Deferred skips the allocation-time zero-fill (for NUMA first-touch
  // placement by the level executor); writing every cell before any read
  // is the caller's contract, which fillValid + exchange satisfies for
  // the cells compared here.
  LevelData ld(dbl, 1, 2, Pitch::Padded, Init::Deferred);
  LevelData ref(dbl, 1, 2);
  fillValid(ld);
  fillValid(ref);
  ld.exchange();
  ref.exchange();
  for (std::size_t b = 0; b < ld.size(); ++b) {
    EXPECT_EQ(FArrayBox::maxAbsDiff(ld[b], ref[b], ref[b].box()), 0.0);
  }
}

TEST(LevelData, ZeroInitIsTheDefault) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(16)), 16);
  LevelData ld(dbl, 2, 1);
  const FArrayBox& fab = ld[0];
  for (int c = 0; c < 2; ++c) {
    forEachCell(fab.box(), [&](int i, int j, int k) {
      ASSERT_EQ(fab(i, j, k, c), 0.0);
    });
  }
}

} // namespace
} // namespace fluxdiv::grid
