#include "grid/norms.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fluxdiv::grid {
namespace {

LevelData makeLevel() {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 4);
  LevelData ld(dbl, 2, 1);
  for (std::size_t b = 0; b < ld.size(); ++b) {
    forEachCell(ld.validBox(b), [&](int i, int j, int k) {
      ld[b](i, j, k, 0) = (i + j + k) % 2 == 0 ? 1.0 : -1.0;
      ld[b](i, j, k, 1) = 3.0;
    });
  }
  return ld;
}

TEST(Norms, SumCancelsAlternatingField) {
  LevelData ld = makeLevel();
  EXPECT_EQ(levelSum(ld, 0), 0.0);
  EXPECT_EQ(levelSum(ld, 1), 3.0 * 512);
}

TEST(Norms, L1CountsMagnitudes) {
  LevelData ld = makeLevel();
  EXPECT_EQ(levelNormL1(ld, 0), 512.0);
  EXPECT_EQ(levelNormL1(ld, 1), 3.0 * 512);
}

TEST(Norms, L2OfConstantField) {
  LevelData ld = makeLevel();
  EXPECT_NEAR(levelNormL2(ld, 1), 3.0 * std::sqrt(512.0), 1e-12);
  EXPECT_NEAR(levelNormL2(ld, 0), std::sqrt(512.0), 1e-12);
}

TEST(Norms, InfPicksLargestMagnitude) {
  LevelData ld = makeLevel();
  EXPECT_EQ(levelNormInf(ld, 1), 3.0);
  // Box 3 owns [4..7]x[4..7]x[0..3]; poke a cell inside its valid region.
  ld[3](IntVect(5, 5, 1), 0) = -7.25;
  EXPECT_EQ(levelNormInf(ld, 0), 7.25);
}

TEST(Norms, GhostCellsAreExcluded) {
  LevelData ld = makeLevel();
  // Poison a ghost cell; no norm may see it.
  ld[0](IntVect(-1, 0, 0), 0) = 1e9;
  EXPECT_LT(levelNormInf(ld, 0), 2.0);
  EXPECT_EQ(levelNormL1(ld, 0), 512.0);
}

TEST(Norms, LevelSumsCoversAllComponents) {
  LevelData ld = makeLevel();
  const auto sums = levelSums(ld);
  EXPECT_EQ(sums[0], 0.0);
  EXPECT_EQ(sums[1], 3.0 * 512);
}

TEST(Norms, DiffInf) {
  LevelData a = makeLevel();
  LevelData b = makeLevel();
  EXPECT_EQ(levelDiffInf(a, b, 0), 0.0);
  b[1](IntVect(4, 0, 0), 0) += 0.5;
  EXPECT_EQ(levelDiffInf(a, b, 0), 0.5);
}

TEST(Norms, ComponentRangeChecked) {
  LevelData ld = makeLevel();
  EXPECT_THROW((void)levelSum(ld, 2), std::out_of_range);
  EXPECT_THROW((void)levelNormInf(ld, -1), std::out_of_range);
}

} // namespace
} // namespace fluxdiv::grid
