#include "grid/copier.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

namespace fluxdiv::grid {
namespace {

/// Property harness: over a given layout/nghost, every ghost cell of
/// every box must be written by exactly one CopyOp, and every op's source
/// region must lie inside the source box's valid region.
void checkExactCover(const DisjointBoxLayout& dbl, int nghost) {
  const Copier copier(dbl, nghost);
  // Count coverage per (box, cell).
  std::map<std::pair<std::size_t, std::array<int, 3>>, int> cover;
  for (const CopyOp& op : copier.ops()) {
    const Box valid = dbl.box(op.destBox);
    const Box srcValid = dbl.box(op.srcBox);
    EXPECT_FALSE(op.destRegion.empty());
    // Dest region is pure ghost: disjoint from the valid region.
    EXPECT_FALSE(op.destRegion.intersects(valid));
    // Shifted source region sits inside the source box's valid cells.
    EXPECT_TRUE(srcValid.contains(op.destRegion.shift(op.srcShift)))
        << "op dest box " << op.destBox << " src box " << op.srcBox;
    forEachCell(op.destRegion, [&](int i, int j, int k) {
      ++cover[{op.destBox, {i, j, k}}];
    });
  }
  // Every ghost cell covered exactly once.
  std::int64_t ghostCells = 0;
  for (std::size_t b = 0; b < dbl.size(); ++b) {
    const Box valid = dbl.box(b);
    const Box ghosted = valid.grow(nghost);
    forEachCell(ghosted, [&](int i, int j, int k) {
      if (valid.contains(IntVect(i, j, k))) {
        return;
      }
      ++ghostCells;
      const auto it = cover.find({b, {i, j, k}});
      ASSERT_NE(it, cover.end())
          << "uncovered ghost (" << i << ',' << j << ',' << k << ") box "
          << b;
      EXPECT_EQ(it->second, 1)
          << "ghost (" << i << ',' << j << ',' << k << ") box " << b
          << " covered " << it->second << " times";
    });
  }
  EXPECT_EQ(copier.ghostCellCount(), ghostCells);
}

TEST(Copier, ExactCoverMultiBoxPeriodic) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(24)), 8);
  checkExactCover(dbl, 2);
}

TEST(Copier, ExactCoverSingleBoxSelfWrap) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 8);
  checkExactCover(dbl, 2);
}

TEST(Copier, ExactCoverMaxGhost) {
  // nghost == boxSize is the legal extreme.
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(12)), 4);
  checkExactCover(dbl, 4);
}

TEST(Copier, ExactCoverAnisotropicLayout) {
  DisjointBoxLayout dbl(
      ProblemDomain(Box(IntVect::zero(), IntVect(15, 7, 7))),
      IntVect(8, 8, 4));
  checkExactCover(dbl, 2);
}

TEST(Copier, NonPeriodicSkipsDomainBoundaryGhosts) {
  DisjointBoxLayout dbl(
      ProblemDomain(Box::cube(16), /*periodicAll=*/false), 8);
  const Copier copier(dbl, 2);
  const Box dom = dbl.domain().box();
  for (const CopyOp& op : copier.ops()) {
    EXPECT_TRUE(dom.contains(op.destRegion))
        << "op fills ghosts outside a non-periodic domain";
    EXPECT_EQ(op.srcShift, IntVect::zero());
  }
  // Interior ghosts are still covered: the low-x box's high-x ghosts.
  bool found = false;
  for (const CopyOp& op : copier.ops()) {
    if (op.destBox == 0 && op.destRegion.contains(IntVect(8, 3, 3))) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Copier, MixedPeriodicity) {
  ProblemDomain dom(Box::cube(16), std::array<bool, 3>{true, false, true});
  DisjointBoxLayout dbl(dom, 8);
  const Copier copier(dbl, 2);
  for (const CopyOp& op : copier.ops()) {
    // No op may fill ghosts beyond the non-periodic y extent.
    EXPECT_GE(op.destRegion.lo(1), 0);
    EXPECT_LE(op.destRegion.hi(1), 15);
    // y never wraps.
    EXPECT_EQ(op.srcShift[1], 0);
  }
}

TEST(Copier, ZeroGhostYieldsEmptyPlan) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(16)), 8);
  const Copier copier(dbl, 0);
  EXPECT_TRUE(copier.ops().empty());
  EXPECT_EQ(copier.ghostCellCount(), 0);
  EXPECT_EQ(copier.bytesPerExchange(5), 0u);
}

TEST(Copier, BytesPerExchangeScalesWithComponents) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(16)), 8);
  const Copier copier(dbl, 2);
  EXPECT_EQ(copier.bytesPerExchange(5), 5 * copier.bytesPerExchange(1));
}

TEST(Copier, OpIntrospectionIsConsistent) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(24)), 8);
  const Copier copier(dbl, 2);
  for (const CopyOp& op : copier.ops()) {
    // srcRegion() is the read footprint: the dest region pulled back by
    // the shift, always inside the source box's valid cells.
    EXPECT_EQ(op.srcRegion(), op.destRegion.shift(op.srcShift));
    EXPECT_TRUE(dbl.box(op.srcBox).contains(op.srcRegion()));
    // The recorded sector is the halo sector the dest region occupies.
    const Box valid = dbl.box(op.destBox);
    for (int d = 0; d < SpaceDim; ++d) {
      const int expected = op.destRegion.hi(d) < valid.lo(d)   ? -1
                           : op.destRegion.lo(d) > valid.hi(d) ? 1
                                                               : 0;
      EXPECT_EQ(op.sector[d], expected);
    }
    EXPECT_FALSE(op.sector == IntVect::zero());
  }
}

TEST(Copier, OpLabelsAreStableAndUnique) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(24)), 8);
  const Copier copier(dbl, 2);
  std::set<std::string> seen;
  for (std::size_t i = 0; i < copier.ops().size(); ++i) {
    const std::string label = copier.opLabel(i);
    // Deterministic: same plan, same label.
    EXPECT_EQ(label, copier.opLabel(i));
    // One label per (dest, src, sector) triple — and the plan has one op
    // per such triple, so labels are unique across the plan.
    EXPECT_TRUE(seen.insert(label).second) << label;
    const CopyOp& op = copier.ops()[i];
    EXPECT_NE(label.find("box" + std::to_string(op.destBox)),
              std::string::npos);
    EXPECT_NE(label.find("box" + std::to_string(op.srcBox)),
              std::string::npos);
    EXPECT_NE(label.find("sector["), std::string::npos);
  }
}

} // namespace
} // namespace fluxdiv::grid
