#include "grid/box.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fluxdiv::grid {
namespace {

TEST(Box, DefaultIsEmpty) {
  Box b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.numPts(), 0);
  EXPECT_EQ(b.size(0), 0);
}

TEST(Box, CubeConstruction) {
  const Box b = Box::cube(16);
  EXPECT_EQ(b.lo(), IntVect::zero());
  EXPECT_EQ(b.hi(), IntVect(15, 15, 15));
  EXPECT_EQ(b.numPts(), 16 * 16 * 16);
}

TEST(Box, CubeWithOrigin) {
  const Box b = Box::cube(4, IntVect(8, 0, -4));
  EXPECT_EQ(b.lo(), IntVect(8, 0, -4));
  EXPECT_EQ(b.hi(), IntVect(11, 3, -1));
}

TEST(Box, Contains) {
  const Box b = Box::cube(8);
  EXPECT_TRUE(b.contains(IntVect(0, 0, 0)));
  EXPECT_TRUE(b.contains(IntVect(7, 7, 7)));
  EXPECT_FALSE(b.contains(IntVect(8, 0, 0)));
  EXPECT_FALSE(b.contains(IntVect(0, -1, 0)));
  EXPECT_TRUE(b.contains(Box::cube(4)));
  EXPECT_FALSE(b.contains(Box::cube(9)));
  EXPECT_TRUE(b.contains(Box())); // empty boxes are vacuously contained
}

TEST(Box, Intersection) {
  const Box a = Box::cube(8);
  const Box b = Box::cube(8, IntVect(4, 4, 4));
  const Box i = a & b;
  EXPECT_EQ(i, Box(IntVect(4, 4, 4), IntVect(7, 7, 7)));
  EXPECT_TRUE(a.intersects(b));
  const Box far = Box::cube(2, IntVect(100, 0, 0));
  EXPECT_TRUE((a & far).empty());
  EXPECT_FALSE(a.intersects(far));
}

TEST(Box, GrowAndShift) {
  const Box b = Box::cube(8);
  const Box g = b.grow(2);
  EXPECT_EQ(g.lo(), IntVect(-2, -2, -2));
  EXPECT_EQ(g.hi(), IntVect(9, 9, 9));
  const Box gd = b.grow(1, 3);
  EXPECT_EQ(gd.lo(), IntVect(0, -3, 0));
  EXPECT_EQ(gd.hi(), IntVect(7, 10, 7));
  const Box s = b.shift(IntVect(1, 2, 3));
  EXPECT_EQ(s.lo(), IntVect(1, 2, 3));
  EXPECT_EQ(s.numPts(), b.numPts());
}

TEST(Box, FaceBoxAddsOneOnHighSide) {
  const Box b = Box::cube(8);
  for (int d = 0; d < SpaceDim; ++d) {
    const Box f = b.faceBox(d);
    EXPECT_EQ(f.size(d), 9);
    for (int q = 0; q < SpaceDim; ++q) {
      if (q != d) {
        EXPECT_EQ(f.size(q), 8);
      }
    }
  }
}

TEST(Box, Slabs) {
  const Box b = Box::cube(8);
  const Box lo = b.lowSlab(2, 3);
  EXPECT_EQ(lo, Box(IntVect(0, 0, 0), IntVect(7, 7, 2)));
  const Box hi = b.highSlab(0, 1);
  EXPECT_EQ(hi, Box(IntVect(7, 0, 0), IntVect(7, 7, 7)));
}

TEST(Box, ForEachCellVisitsAllInUnitStrideOrder) {
  const Box b(IntVect(1, 2, 3), IntVect(2, 3, 4));
  std::vector<IntVect> visited;
  forEachCell(b, [&](int i, int j, int k) { visited.emplace_back(i, j, k); });
  ASSERT_EQ(visited.size(), 8u);
  EXPECT_EQ(visited.front(), IntVect(1, 2, 3));
  EXPECT_EQ(visited[1], IntVect(2, 2, 3)); // x fastest
  EXPECT_EQ(visited.back(), IntVect(2, 3, 4));
}

TEST(Box, EmptyIntersectionStaysEmptyUnderOps) {
  const Box e = Box::cube(4) & Box::cube(4, IntVect(10, 10, 10));
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.numPts(), 0);
}

} // namespace
} // namespace fluxdiv::grid
