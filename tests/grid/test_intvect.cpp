#include "grid/intvect.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace fluxdiv::grid {
namespace {

TEST(IntVect, DefaultIsZero) {
  IntVect v;
  EXPECT_EQ(v, IntVect::zero());
  EXPECT_EQ(v.sum(), 0);
}

TEST(IntVect, BasisVectors) {
  for (int d = 0; d < SpaceDim; ++d) {
    const IntVect e = IntVect::basis(d);
    for (int q = 0; q < SpaceDim; ++q) {
      EXPECT_EQ(e[q], q == d ? 1 : 0);
    }
  }
}

TEST(IntVect, Arithmetic) {
  const IntVect a(1, 2, 3);
  const IntVect b(4, -5, 6);
  EXPECT_EQ(a + b, IntVect(5, -3, 9));
  EXPECT_EQ(a - b, IntVect(-3, 7, -3));
  EXPECT_EQ(a * 2, IntVect(2, 4, 6));
  EXPECT_EQ(-a, IntVect(-1, -2, -3));
}

TEST(IntVect, CompoundAdd) {
  IntVect a(1, 1, 1);
  a += IntVect(2, 3, 4);
  EXPECT_EQ(a, IntVect(3, 4, 5));
}

TEST(IntVect, PartialOrder) {
  EXPECT_TRUE(IntVect(1, 2, 3).allLE(IntVect(1, 2, 3)));
  EXPECT_TRUE(IntVect(0, 2, 3).allLE(IntVect(1, 2, 3)));
  EXPECT_FALSE(IntVect(2, 2, 3).allLE(IntVect(1, 9, 9)));
  EXPECT_TRUE(IntVect(5, 5, 5).allGE(IntVect(1, 2, 3)));
}

TEST(IntVect, SumAndProduct) {
  EXPECT_EQ(IntVect(2, 3, 4).sum(), 9);
  EXPECT_EQ(IntVect(2, 3, 4).product(), 24);
  // product must not overflow 32-bit for large grids
  EXPECT_EQ(IntVect(2048, 2048, 2048).product(),
            std::int64_t(2048) * 2048 * 2048);
}

TEST(IntVect, MinMax) {
  const IntVect a(1, 9, 3);
  const IntVect b(4, 2, 3);
  EXPECT_EQ(IntVect::min(a, b), IntVect(1, 2, 3));
  EXPECT_EQ(IntVect::max(a, b), IntVect(4, 9, 3));
}

TEST(IntVect, UnitConstructor) {
  EXPECT_EQ(IntVect::unit(3), IntVect(3, 3, 3));
  EXPECT_EQ(IntVect::unit(), IntVect(1, 1, 1));
}

TEST(IntVect, HashDistinguishesNeighbors) {
  std::unordered_set<IntVect> set;
  for (int k = 0; k < 4; ++k) {
    for (int j = 0; j < 4; ++j) {
      for (int i = 0; i < 4; ++i) {
        set.insert(IntVect(i, j, k));
      }
    }
  }
  EXPECT_EQ(set.size(), 64u);
}

} // namespace
} // namespace fluxdiv::grid
