#include "grid/layout.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fluxdiv::grid {
namespace {

ProblemDomain domain64() { return ProblemDomain(Box::cube(64)); }

TEST(DisjointBoxLayout, CountsAndSizes) {
  DisjointBoxLayout dbl(domain64(), 16);
  EXPECT_EQ(dbl.size(), 64u);
  EXPECT_EQ(dbl.gridSize(), IntVect(4, 4, 4));
  for (std::size_t i = 0; i < dbl.size(); ++i) {
    EXPECT_EQ(dbl.box(i).numPts(), 16 * 16 * 16);
  }
}

TEST(DisjointBoxLayout, RejectsNonDividingBoxSize) {
  EXPECT_THROW(DisjointBoxLayout(domain64(), 48), std::invalid_argument);
  EXPECT_THROW(DisjointBoxLayout(domain64(), IntVect(16, 16, 0)),
               std::invalid_argument);
}

TEST(DisjointBoxLayout, BoxesExactlyCoverDomainDisjointly) {
  DisjointBoxLayout dbl(domain64(), 32);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < dbl.size(); ++i) {
    total += dbl.box(i).numPts();
    for (std::size_t j = i + 1; j < dbl.size(); ++j) {
      EXPECT_FALSE(dbl.box(i).intersects(dbl.box(j)));
    }
  }
  EXPECT_EQ(total, domain64().box().numPts());
}

TEST(DisjointBoxLayout, IndexContainingIsConsistentWithBoxes) {
  DisjointBoxLayout dbl(domain64(), 16);
  for (const IntVect p :
       {IntVect(0, 0, 0), IntVect(15, 15, 15), IntVect(16, 0, 0),
        IntVect(63, 63, 63), IntVect(31, 47, 5)}) {
    const std::size_t idx = dbl.indexContaining(p);
    EXPECT_TRUE(dbl.box(idx).contains(p)) << "point " << p;
  }
  EXPECT_THROW((void)dbl.indexContaining(IntVect(64, 0, 0)),
               std::out_of_range);
}

TEST(DisjointBoxLayout, WrappedIndexPeriodic) {
  DisjointBoxLayout dbl(domain64(), 16); // 4 boxes per direction
  IntVect shift;
  // One box to the left of box (0,0,0) wraps to bx = 3 with +64-cell shift.
  const std::int64_t idx = dbl.wrappedIndex(IntVect(-1, 0, 0), shift);
  EXPECT_EQ(idx, 3);
  EXPECT_EQ(shift, IntVect(64, 0, 0));
  // In range: identity.
  const std::int64_t idx2 = dbl.wrappedIndex(IntVect(2, 1, 0), shift);
  EXPECT_EQ(idx2, 2 + 4 * 1);
  EXPECT_EQ(shift, IntVect::zero());
}

TEST(DisjointBoxLayout, WrappedIndexNonPeriodicReturnsMinusOne) {
  ProblemDomain dom(Box::cube(64), /*periodicAll=*/false);
  DisjointBoxLayout dbl(dom, 16);
  IntVect shift;
  EXPECT_EQ(dbl.wrappedIndex(IntVect(-1, 0, 0), shift), -1);
  EXPECT_EQ(dbl.wrappedIndex(IntVect(0, 4, 0), shift), -1);
}

TEST(DisjointBoxLayout, SingleBoxPerDirectionWrapsToSelf) {
  ProblemDomain dom(Box::cube(16));
  DisjointBoxLayout dbl(dom, 16);
  IntVect shift;
  const std::int64_t idx = dbl.wrappedIndex(IntVect(1, 0, 0), shift);
  EXPECT_EQ(idx, 0);
  EXPECT_EQ(shift, IntVect(-16, 0, 0));
}

TEST(DisjointBoxLayout, BoxCoordsRoundTrip) {
  DisjointBoxLayout dbl(domain64(), 16);
  for (std::size_t i = 0; i < dbl.size(); ++i) {
    IntVect shift;
    EXPECT_EQ(dbl.wrappedIndex(dbl.boxCoords(i), shift),
              static_cast<std::int64_t>(i));
    EXPECT_EQ(shift, IntVect::zero());
  }
}

TEST(DisjointBoxLayout, AnisotropicBoxes) {
  ProblemDomain dom(Box(IntVect::zero(), IntVect(31, 15, 7)));
  DisjointBoxLayout dbl(dom, IntVect(16, 8, 8));
  EXPECT_EQ(dbl.gridSize(), IntVect(2, 2, 1));
  EXPECT_EQ(dbl.size(), 4u);
  EXPECT_EQ(dbl.box(3).lo(), IntVect(16, 8, 0));
}

} // namespace
} // namespace fluxdiv::grid
