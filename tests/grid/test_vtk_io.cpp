#include "grid/vtk_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace fluxdiv::grid {
namespace {

class VtkTest : public testing::Test {
protected:
  std::string path_ = testing::TempDir() + "fluxdiv_test.vtk";
  void TearDown() override { std::remove(path_.c_str()); }

  static LevelData makeLevel() {
    DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 4);
    LevelData ld(dbl, 2, 2);
    for (std::size_t b = 0; b < ld.size(); ++b) {
      forEachCell(ld.validBox(b), [&](int i, int j, int k) {
        ld[b](i, j, k, 0) = i + 100.0 * j + 10000.0 * k;
        ld[b](i, j, k, 1) = -1.5;
      });
    }
    return ld;
  }
};

TEST_F(VtkTest, AsciiRoundTripPreservesValues) {
  LevelData ld = makeLevel();
  VtkWriteOptions opts;
  opts.componentNames = {"rho", "u"};
  writeVtk(path_, ld, opts);

  const VtkData back = readVtkCellData(path_);
  EXPECT_EQ(back.dims, IntVect(8, 8, 8));
  ASSERT_EQ(back.names.size(), 2u);
  EXPECT_EQ(back.names[0], "rho");
  EXPECT_EQ(back.names[1], "u");
  // x-fastest flattening: cell (i,j,k) at i + 8*(j + 8*k).
  EXPECT_EQ(back.data[0][0], 0.0);
  EXPECT_EQ(back.data[0][3], 3.0);
  EXPECT_EQ(back.data[0][8 * 8 * 7 + 8 * 2 + 5], 5 + 200.0 + 70000.0);
  for (Real v : back.data[1]) {
    ASSERT_EQ(v, -1.5);
  }
}

TEST_F(VtkTest, DefaultComponentNames) {
  LevelData ld = makeLevel();
  writeVtk(path_, ld);
  const VtkData back = readVtkCellData(path_);
  EXPECT_EQ(back.names[0], "comp0");
  EXPECT_EQ(back.names[1], "comp1");
}

TEST_F(VtkTest, HeaderDeclaresPointDimensionsAndSpacing) {
  LevelData ld = makeLevel();
  VtkWriteOptions opts;
  opts.spacing = 0.125;
  writeVtk(path_, ld, opts);
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("DIMENSIONS 9 9 9"), std::string::npos);
  EXPECT_NE(content.find("SPACING 0.125 0.125 0.125"), std::string::npos);
  EXPECT_NE(content.find("CELL_DATA 512"), std::string::npos);
}

TEST_F(VtkTest, BinaryModeWritesParsableHeader) {
  LevelData ld = makeLevel();
  VtkWriteOptions opts;
  opts.binary = true;
  writeVtk(path_, ld, opts);
  std::ifstream in(path_, std::ios::binary);
  std::string header(128, '\0');
  in.read(header.data(), 128);
  EXPECT_NE(header.find("BINARY"), std::string::npos);
  // The reader refuses binary (documented).
  EXPECT_THROW((void)readVtkCellData(path_), std::runtime_error);
}

TEST_F(VtkTest, WriteFailsOnBadPath) {
  LevelData ld = makeLevel();
  EXPECT_THROW(writeVtk("/nonexistent-dir/x.vtk", ld),
               std::runtime_error);
}

TEST_F(VtkTest, ReadFailsOnMissingFile) {
  EXPECT_THROW((void)readVtkCellData(testing::TempDir() + "nope.vtk"),
               std::runtime_error);
}

TEST_F(VtkTest, GhostValuesDoNotLeakIntoOutput) {
  LevelData ld = makeLevel();
  ld[0](IntVect(-1, -1, -1), 0) = 1e30; // poison a ghost
  writeVtk(path_, ld);
  const VtkData back = readVtkCellData(path_);
  for (Real v : back.data[0]) {
    ASSERT_LT(v, 1e6);
  }
}

} // namespace
} // namespace fluxdiv::grid
