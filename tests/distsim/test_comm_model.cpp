#include "distsim/comm_model.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace fluxdiv::distsim {
namespace {

using grid::Box;
using grid::Copier;
using grid::DisjointBoxLayout;
using grid::ProblemDomain;

struct Case {
  DisjointBoxLayout dbl;
  Copier copier;
  Case(int dom, int box, int nghost = 2)
      : dbl(ProblemDomain(Box::cube(dom)), box), copier(dbl, nghost) {}
};

TEST(CommModel, SingleRankIsAllLocal) {
  Case c(64, 16);
  RankDecomposition ranks(c.dbl, 1);
  const ExchangeCost cost = analyzeExchange(ranks, c.copier, 5);
  EXPECT_EQ(cost.offRankCells, 0);
  EXPECT_EQ(cost.messagesTotal, 0);
  EXPECT_EQ(cost.bytesTotal, 0u);
  EXPECT_EQ(cost.predictedSeconds, 0.0);
  EXPECT_EQ(cost.onRankCells, c.copier.ghostCellCount());
}

TEST(CommModel, CellsPartitionIntoLocalAndRemote) {
  Case c(64, 16);
  for (int nRanks : {2, 4, 8, 64}) {
    RankDecomposition ranks(c.dbl, nRanks);
    const ExchangeCost cost = analyzeExchange(ranks, c.copier, 5);
    EXPECT_EQ(cost.onRankCells + cost.offRankCells,
              c.copier.ghostCellCount())
        << nRanks;
  }
}

TEST(CommModel, OneRankPerBoxMakesEverythingRemote) {
  Case c(64, 16); // 64 boxes
  RankDecomposition ranks(c.dbl, 64);
  const ExchangeCost cost = analyzeExchange(ranks, c.copier, 5);
  EXPECT_EQ(cost.onRankCells, 0);
  EXPECT_EQ(cost.offRankCells, c.copier.ghostCellCount());
  // Every box has 26 neighbors, all remote.
  EXPECT_EQ(cost.messagesTotal, 64 * 26);
  EXPECT_EQ(cost.maxMessagesPerRank, 26);
}

TEST(CommModel, BytesMatchCellCounts) {
  Case c(32, 16);
  RankDecomposition ranks(c.dbl, 8);
  const int ncomp = 5;
  const ExchangeCost cost = analyzeExchange(ranks, c.copier, ncomp);
  EXPECT_EQ(cost.bytesTotal,
            static_cast<std::uint64_t>(cost.offRankCells) * ncomp *
                sizeof(grid::Real));
}

TEST(CommModel, MoreRanksNeverReduceTraffic) {
  Case c(64, 8);
  std::uint64_t prev = 0;
  for (int nRanks : {1, 2, 4, 8}) {
    RankDecomposition ranks(c.dbl, nRanks);
    const ExchangeCost cost = analyzeExchange(ranks, c.copier, 5);
    EXPECT_GE(cost.bytesTotal, prev) << nRanks;
    prev = cost.bytesTotal;
  }
}

TEST(CommModel, SmallerBoxesCostMoreAtFixedRankCount) {
  // The paper's motivation at simulated scale: same domain, same ranks,
  // smaller boxes -> more ghost volume and more messages.
  const int nRanks = 8;
  ExchangeCost prev;
  bool first = true;
  for (int box : {32, 16, 8}) {
    Case c(64, box);
    RankDecomposition ranks(c.dbl, nRanks);
    const ExchangeCost cost = analyzeExchange(ranks, c.copier, 5);
    if (!first) {
      EXPECT_GT(cost.bytesTotal, prev.bytesTotal) << "box " << box;
      EXPECT_GT(cost.messagesTotal, prev.messagesTotal) << "box " << box;
      EXPECT_GT(cost.predictedSeconds, prev.predictedSeconds);
    }
    prev = cost;
    first = false;
  }
}

TEST(CommModel, AlphaBetaPrediction) {
  Case c(32, 16);
  RankDecomposition ranks(c.dbl, 8); // one box per rank
  NetworkParams net;
  net.latencySeconds = 1.0;   // exaggerate to make terms checkable
  net.bytesPerSecond = 1.0e9;
  const ExchangeCost cost = analyzeExchange(ranks, c.copier, 1, net);
  // Busiest rank: messages*1s + bytes/1e9.
  const double expected = double(cost.maxMessagesPerRank) * 1.0 +
                          double(cost.maxBytesPerRank) / 1.0e9;
  EXPECT_DOUBLE_EQ(cost.predictedSeconds, expected);
}

TEST(CommModel, OffRankFraction) {
  Case c(64, 16);
  RankDecomposition one(c.dbl, 1);
  EXPECT_EQ(analyzeExchange(one, c.copier, 5).offRankFraction(), 0.0);
  RankDecomposition all(c.dbl, 64);
  EXPECT_EQ(analyzeExchange(all, c.copier, 5).offRankFraction(), 1.0);
}

TEST(CommModel, RankPairTrafficSumsToTotals) {
  Case c(64, 16);
  for (int nRanks : {1, 2, 4, 8, 64}) {
    RankDecomposition ranks(c.dbl, nRanks);
    const ExchangeCost cost = analyzeExchange(ranks, c.copier, 5);
    std::int64_t msgs = 0;
    std::uint64_t bytes = 0;
    int prevSrc = -1;
    int prevDst = -1;
    for (const RankPairCost& p : cost.pairs) {
      EXPECT_NE(p.srcRank, p.dstRank); // cross-rank pairs only
      EXPECT_GE(p.srcRank, 0);
      EXPECT_LT(p.srcRank, nRanks);
      EXPECT_GE(p.dstRank, 0);
      EXPECT_LT(p.dstRank, nRanks);
      // Sorted by (srcRank, dstRank), no duplicates.
      EXPECT_TRUE(p.srcRank > prevSrc ||
                  (p.srcRank == prevSrc && p.dstRank > prevDst));
      prevSrc = p.srcRank;
      prevDst = p.dstRank;
      EXPECT_GT(p.messages, 0);
      EXPECT_GT(p.bytes, 0u);
      msgs += p.messages;
      bytes += p.bytes;
    }
    EXPECT_EQ(msgs, cost.messagesTotal) << nRanks;
    EXPECT_EQ(bytes, cost.bytesTotal) << nRanks;
    if (nRanks == 1) {
      EXPECT_TRUE(cost.pairs.empty());
    }
  }
}

TEST(CommModel, OneBoxPerRankPairTraffic) {
  // 2^3 boxes on 8 ranks: each ordered rank pair is one box pair, and
  // the periodic wrap makes every pair exchange through multiple sectors
  // (face + edge + corner images of the same neighbor).
  Case c(16, 8);
  RankDecomposition ranks(c.dbl, 8);
  const ExchangeCost cost = analyzeExchange(ranks, c.copier, 1);
  EXPECT_EQ(cost.pairs.size(), 8u * 7u); // all-to-all at this box count
  for (const RankPairCost& p : cost.pairs) {
    EXPECT_GT(p.messages, 1) << p.srcRank << "->" << p.dstRank;
  }
}

} // namespace
} // namespace fluxdiv::distsim
