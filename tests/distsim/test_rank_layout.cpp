#include "distsim/rank_layout.hpp"

#include <gtest/gtest.h>

namespace fluxdiv::distsim {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::ProblemDomain;

DisjointBoxLayout layout64() {
  return DisjointBoxLayout(ProblemDomain(Box::cube(64)), 16); // 64 boxes
}

TEST(RankDecomposition, EveryBoxOwnedExactlyOnce) {
  const auto dbl = layout64();
  RankDecomposition ranks(dbl, 6);
  std::int64_t total = 0;
  for (int r = 0; r < ranks.nRanks(); ++r) {
    total += ranks.boxCount(r);
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(dbl.size()));
  for (std::size_t b = 0; b < dbl.size(); ++b) {
    const int r = ranks.rankOf(b);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 6);
  }
}

TEST(RankDecomposition, BalancedWithinOneBox) {
  const auto dbl = layout64();
  for (int nRanks : {1, 3, 7, 24, 64}) {
    RankDecomposition ranks(dbl, nRanks);
    EXPECT_LE(ranks.imbalance(), 1) << nRanks << " ranks";
  }
}

TEST(RankDecomposition, ContiguousChunks) {
  const auto dbl = layout64();
  RankDecomposition ranks(dbl, 4);
  // Ranks are nondecreasing along the linear box order.
  for (std::size_t b = 1; b < dbl.size(); ++b) {
    EXPECT_GE(ranks.rankOf(b), ranks.rankOf(b - 1));
  }
}

TEST(RankDecomposition, MoreRanksThanBoxes) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(32)), 16); // 8 boxes
  RankDecomposition ranks(dbl, 24);
  std::int64_t nonEmpty = 0;
  for (int r = 0; r < 24; ++r) {
    if (ranks.boxCount(r) > 0) {
      ++nonEmpty;
    }
  }
  EXPECT_EQ(nonEmpty, 8);
}

TEST(RankDecomposition, RejectsBadRankCount) {
  EXPECT_THROW(RankDecomposition(layout64(), 0), std::invalid_argument);
}

} // namespace
} // namespace fluxdiv::distsim
