// Tests of the exchange-plan verifier (analysis/commcheck). Three layers,
// mirroring test_graphcheck: every real Copier plan the suite's layouts
// produce must verify exact/matched/deadlock-free under rank partitions
// {1,2,4,8} with traffic agreeing EXACTLY with distsim's alpha-beta
// inputs; hand-edited plans exercise each diagnostic kind in isolation
// with its labeled two-endpoint witness; and the seeded plan
// miscompilations of analysis/mutate must each be rejected with their
// predicted witness labels.

#include "analysis/commcheck.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/mutate.hpp"
#include "distsim/comm_model.hpp"
#include "distsim/rank_layout.hpp"
#include "grid/box.hpp"
#include "grid/copier.hpp"
#include "grid/layout.hpp"

namespace fluxdiv::analysis {
namespace {

using grid::Copier;
using grid::DisjointBoxLayout;
using grid::IntVect;
using grid::ProblemDomain;

/// The layout shapes the repo's tests and benches exchange over.
struct NamedLayout {
  std::string name;
  DisjointBoxLayout dbl;
  int nghost;
};

std::vector<NamedLayout> suiteLayouts() {
  return {
      {"periodic 3^3@8 g2",
       DisjointBoxLayout(ProblemDomain(grid::Box::cube(24)), 8), 2},
      {"single box self-wrap g2",
       DisjointBoxLayout(ProblemDomain(grid::Box::cube(8)), 8), 2},
      {"max ghost 12^3/4 g4",
       DisjointBoxLayout(ProblemDomain(grid::Box::cube(12)), 4), 4},
      {"anisotropic 16x8x8/(8,8,4) g2",
       DisjointBoxLayout(ProblemDomain(grid::Box(
                             IntVect::zero(), IntVect{15, 7, 7})),
                         IntVect{8, 8, 4}),
       2},
      {"walls 2^3@8 g2",
       DisjointBoxLayout(
           ProblemDomain(grid::Box::cube(16), /*periodicAll=*/false), 8),
       2},
      {"mixed 2^3@8 g2",
       DisjointBoxLayout(ProblemDomain(grid::Box::cube(16),
                                       std::array<bool, 3>{true, false,
                                                           true}),
                         8),
       2},
  };
}

CommPlanModel modelFor(const NamedLayout& nl, int ncomp = 2) {
  const Copier copier(nl.dbl, nl.nghost);
  return buildCommPlanModel(nl.dbl, copier, ncomp, nl.name);
}

bool reported(const CommCheckReport& rep, CommDiagKind kind,
              const std::string& opA = {}, const std::string& opB = {}) {
  for (const CommDiagnostic& d : rep.diagnostics) {
    if (d.kind == kind && (opA.empty() || d.opA == opA) &&
        (opB.empty() || d.opB == opB)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Every real plan proves clean under every standard partition, and the
// statically counted traffic agrees exactly with distsim.
// ---------------------------------------------------------------------------

TEST(CommCheckClean, AllSuitePlansVerifyUnderAllPartitions) {
  for (const NamedLayout& nl : suiteLayouts()) {
    const Copier copier(nl.dbl, nl.nghost);
    CommPlanModel model = buildCommPlanModel(nl.dbl, copier, 2, nl.name);
    for (const int nranks : {1, 2, 4, 8}) {
      if (static_cast<std::size_t>(nranks) > nl.dbl.size()) {
        break;
      }
      const distsim::RankDecomposition ranks(nl.dbl, nranks);
      applyRankPartition(model, ranks);
      const CommCheckReport rep = checkCommPlan(model);
      for (const CommDiagnostic& d : rep.diagnostics) {
        ADD_FAILURE() << nl.name << " @ " << nranks
                      << " ranks: " << d.message();
      }
      EXPECT_EQ(rep.opCount, model.ops.size());
      const std::vector<std::string> mismatches = crossValidateCommCost(
          rep, distsim::analyzeExchange(ranks, copier, 2));
      for (const std::string& m : mismatches) {
        ADD_FAILURE() << nl.name << " @ " << nranks << " ranks: " << m;
      }
    }
  }
}

TEST(CommCheckClean, SchedulableEvenAtCapacityOne) {
  // Plan order gives every channel identical send and recv order, so the
  // proof must go through even with a single in-flight message per
  // channel.
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  applyRankPartition(model, 4);
  model.queueCapacity = 1;
  const CommCheckReport rep = checkCommPlan(model);
  EXPECT_TRUE(rep.ok());
  EXPECT_GT(rep.crossRankOps, 0u);
}

TEST(CommCheckClean, TrafficCountsMatchKnownGeometry) {
  // 4^3 boxes of 8^3 on 64 ranks: every box alone on its rank, so every
  // one of its 26 incoming sector ops is a message.
  const DisjointBoxLayout dbl(ProblemDomain(grid::Box::cube(32)), 8);
  const Copier copier(dbl, 2);
  CommPlanModel model = buildCommPlanModel(dbl, copier, 1);
  const distsim::RankDecomposition ranks(dbl, 64);
  applyRankPartition(model, ranks);
  const CommCheckReport rep = checkCommPlan(model);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.messagesTotal, 64 * 26);
  EXPECT_EQ(rep.maxMessagesPerRank, 26);
  // Per-pair traffic must sum back to the totals.
  std::int64_t msgs = 0;
  std::uint64_t bytes = 0;
  for (const RankPairTraffic& p : rep.pairs) {
    EXPECT_NE(p.srcRank, p.dstRank);
    msgs += p.messages;
    bytes += p.bytes;
  }
  EXPECT_EQ(msgs, rep.messagesTotal);
  EXPECT_EQ(bytes, rep.bytesTotal);
  EXPECT_TRUE(crossValidateCommCost(
                  rep, distsim::analyzeExchange(ranks, copier, 1))
                  .empty());
}

TEST(CommCheckClean, SingleRankHasNoCrossTraffic) {
  const CommPlanModel model = modelFor(suiteLayouts()[0]);
  const CommCheckReport rep = checkCommPlan(model);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.crossRankOps, 0u);
  EXPECT_EQ(rep.messagesTotal, 0);
  EXPECT_EQ(rep.bytesTotal, 0u);
  EXPECT_TRUE(rep.pairs.empty());
  EXPECT_GT(rep.onRankCells, 0);
  EXPECT_EQ(rep.offRankCells, 0);
}

// ---------------------------------------------------------------------------
// Hand-edited plans: each diagnostic kind with its labeled witness.
// ---------------------------------------------------------------------------

TEST(CommCheckDiagnostics, DroppedOpIsGhostGapAndUnmatchedRecv) {
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  const CommOp dropped = model.ops.front();
  model.ops.erase(model.ops.begin());
  const CommCheckReport rep = checkCommPlan(model);
  EXPECT_FALSE(rep.ok());
  const std::string sendLabel = derivedSendLabel(
      dropped.srcBox, dropped.destBox, dropped.sector);
  EXPECT_TRUE(reported(rep, CommDiagKind::GhostGap,
                       "box" + std::to_string(dropped.destBox) +
                           " ghost halo",
                       sendLabel));
  EXPECT_TRUE(reported(rep, CommDiagKind::UnmatchedRecv, {}, sendLabel));
}

TEST(CommCheckDiagnostics, DuplicatedOpIsDoubleWrite) {
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  model.ops.push_back(model.ops.front());
  const CommCheckReport rep = checkCommPlan(model);
  EXPECT_TRUE(reported(rep, CommDiagKind::DoubleWrite,
                       model.ops.front().label,
                       model.ops.front().label));
}

TEST(CommCheckDiagnostics, RegionIntoInteriorIsStrayWrite) {
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  // Retarget op 0's writes at the interior of its destination box: cells
  // the exchange does not own.
  CommOp& op = model.ops.front();
  op.destRegion = model.layout.box(op.destBox);
  const CommCheckReport rep = checkCommPlan(model);
  EXPECT_TRUE(reported(rep, CommDiagKind::StrayWrite, op.label));
}

TEST(CommCheckDiagnostics, ShiftOffSourceIsSourceInvalid) {
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  CommOp& op = model.ops.front();
  // A wildly wrong shift pushes the read region outside the source box's
  // valid cells entirely.
  op.srcShift += IntVect{1000, 0, 0};
  const CommCheckReport rep = checkCommPlan(model);
  EXPECT_TRUE(reported(rep, CommDiagKind::SourceInvalid, op.label));
}

TEST(CommCheckDiagnostics, RepointedSendIsUnmatched) {
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  CommOp& op = model.ops.front();
  op.srcBox = (op.srcBox + 1) % model.layout.size();
  const CommCheckReport rep = checkCommPlan(model);
  EXPECT_TRUE(reported(rep, CommDiagKind::UnmatchedSend, op.label));
  EXPECT_TRUE(reported(rep, CommDiagKind::UnmatchedRecv));
}

TEST(CommCheckDiagnostics, ShrunkRegionIsExtentMismatch) {
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  // Find an op whose region has extent > 1 along a sector axis and shave
  // its outermost layer, so the endpoints disagree on byte extent.
  for (CommOp& op : model.ops) {
    for (int d = 0; d < grid::SpaceDim; ++d) {
      if (op.sector[d] != 0 &&
          op.destRegion.hi(d) > op.destRegion.lo(d)) {
        IntVect step = IntVect::zero();
        step[d] = 1;
        op.destRegion = op.sector[d] < 0
                            ? grid::Box(op.destRegion.lo() + step,
                                        op.destRegion.hi())
                            : grid::Box(op.destRegion.lo(),
                                        op.destRegion.hi() - step);
        const CommCheckReport rep = checkCommPlan(model);
        EXPECT_TRUE(reported(rep, CommDiagKind::ExtentMismatch, op.label));
        EXPECT_TRUE(reported(rep, CommDiagKind::GhostGap));
        return;
      }
    }
  }
  FAIL() << "no shrinkable op in the plan";
}

TEST(CommCheckDiagnostics, ZeroCapacityChannelsDeadlock) {
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  applyRankPartition(model, 2);
  model.queueCapacity = 0; // unbuffered: every cross-rank send blocks
  const CommCheckReport rep = checkCommPlan(model);
  ASSERT_TRUE(reported(rep, CommDiagKind::DeadlockCycle));
  for (const CommDiagnostic& d : rep.diagnostics) {
    if (d.kind == CommDiagKind::DeadlockCycle) {
      EXPECT_NE(d.detail.find("blocked"), std::string::npos)
          << d.message();
    }
  }
}

TEST(CommCheckDiagnostics, MessageFormatNamesBothEndpointsAndPlan) {
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  const CommOp dropped = model.ops.front();
  model.ops.erase(model.ops.begin());
  const CommCheckReport rep = checkCommPlan(model);
  ASSERT_FALSE(rep.ok());
  bool sawGap = false;
  for (const CommDiagnostic& d : rep.diagnostics) {
    if (d.kind != CommDiagKind::GhostGap) {
      continue;
    }
    sawGap = true;
    const std::string msg = d.message();
    EXPECT_NE(msg.find("ghost-gap"), std::string::npos);
    EXPECT_NE(msg.find(model.name), std::string::npos);
    EXPECT_NE(msg.find(d.opA), std::string::npos);
    EXPECT_NE(msg.find(d.opB), std::string::npos);
  }
  EXPECT_TRUE(sawGap);
}

// ---------------------------------------------------------------------------
// Advisories.
// ---------------------------------------------------------------------------

TEST(CommCheckAdvisories, DuplicatedOpIsAlsoRedundant) {
  CommPlanModel model = modelFor(suiteLayouts()[0]);
  model.ops.push_back(model.ops.front());
  const CommCheckReport rep = checkCommPlan(model, /*findAdvisories=*/true);
  bool sawRedundant = false;
  for (const CommAdvisory& a : rep.advisories) {
    if (a.kind == CommAdviceKind::RedundantOp) {
      sawRedundant = true;
      EXPECT_FALSE(a.opLabel.empty());
      EXPECT_NE(a.message().find("redundant-op"), std::string::npos);
    }
  }
  EXPECT_TRUE(sawRedundant);
}

TEST(CommCheckAdvisories, SmallPeriodicLayoutHasMergeableMessages) {
  // 2 boxes per axis and periodic wrap: each box exchanges with the same
  // neighbor through multiple sectors, so the per-pair message count
  // exceeds the box-pair count.
  const DisjointBoxLayout dbl(ProblemDomain(grid::Box::cube(16)), 8);
  const Copier copier(dbl, 2);
  CommPlanModel model = buildCommPlanModel(dbl, copier, 2);
  applyRankPartition(model, 8);
  const CommCheckReport rep = checkCommPlan(model, /*findAdvisories=*/true);
  EXPECT_TRUE(rep.ok());
  bool sawMergeable = false;
  for (const CommAdvisory& a : rep.advisories) {
    if (a.kind == CommAdviceKind::MergeableMessages) {
      sawMergeable = true;
      EXPECT_GT(a.messages, a.merged);
      EXPECT_GE(a.rankA, 0);
      EXPECT_GE(a.rankB, 0);
    }
  }
  EXPECT_TRUE(sawMergeable);
  // Advisories never fire from the default (diagnostics-only) entry.
  EXPECT_TRUE(checkCommPlan(model).advisories.empty());
}

// ---------------------------------------------------------------------------
// Seeded mutations: every miscompilation rejected with its predicted
// witness.
// ---------------------------------------------------------------------------

using MutatorFn = mutate::CommMutation (*)(const CommPlanModel&,
                                           std::uint64_t);

void expectCaught(const CommPlanModel& base, MutatorFn fn,
                  const char* mutator) {
  for (std::uint64_t seed = 0; seed < 7; ++seed) {
    const mutate::CommMutation mut = fn(base, seed);
    if (mut.expect == CommDiagKind::Ok) {
      continue; // no candidate in this plan
    }
    const CommCheckReport rep = checkCommPlan(mut.model);
    EXPECT_TRUE(reported(rep, mut.expect, mut.witnessA, mut.witnessB))
        << mutator << " seed " << seed << " (" << mut.what
        << "): expected " << commDiagKindName(mut.expect) << " naming '"
        << mut.witnessA << "' vs '" << mut.witnessB << "', got "
        << rep.diagnostics.size() << " diagnostic(s)";
    if (mut.expectAlso != CommDiagKind::Ok) {
      EXPECT_TRUE(reported(rep, mut.expectAlso))
          << mutator << " seed " << seed << " (" << mut.what
          << "): missing companion "
          << commDiagKindName(mut.expectAlso);
    }
  }
}

TEST(CommCheckMutations, AllMutatorsCaughtOnAllSuiteLayouts) {
  for (const NamedLayout& nl : suiteLayouts()) {
    CommPlanModel base = modelFor(nl);
    applyRankPartition(
        base, static_cast<int>(std::min<std::size_t>(nl.dbl.size(), 8)));
    expectCaught(base, &mutate::dropCommOp, "dropCommOp");
    expectCaught(base, &mutate::shrinkCommRegion, "shrinkCommRegion");
    expectCaught(base, &mutate::skewCommSource, "skewCommSource");
    expectCaught(base, &mutate::unmatchCommSend, "unmatchCommSend");
  }
}

TEST(CommCheckMutations, UnmutatedBaselineStaysClean) {
  // Guard the guard: the mutation harness only proves something if the
  // unmutated plan is accepted.
  for (const NamedLayout& nl : suiteLayouts()) {
    const CommPlanModel base = modelFor(nl);
    EXPECT_TRUE(checkCommPlan(base).ok()) << nl.name;
  }
}

} // namespace
} // namespace fluxdiv::analysis
