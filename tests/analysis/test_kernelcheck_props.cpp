// Property test: the pencil kernels are bit-level rewrites of the scalar
// exemplar stages, so for every stage x direction x pitch x box size the
// *inferred* footprints must match exactly — same observed offset sets
// per dependence role, same write set, same output self-dependence. The
// scalar drivers are the spec (a transliteration of Eqs. 6-8); the
// pencil drivers are what the executors actually run; differential
// probing of both closes the loop without trusting either.

#include "analysis/kernelcheck.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "grid/box.hpp"
#include "kernels/footprint.hpp"

namespace fluxdiv::analysis {
namespace {

using grid::Pitch;

const KernelShape* findShape(const std::vector<KernelShape>& shapes,
                             const std::string& name) {
  for (const KernelShape& s : shapes) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::string fmtOffsets(const std::vector<grid::IntVect>& offs) {
  std::string out = "{";
  for (const grid::IntVect& o : offs) {
    out += " (" + std::to_string(o[0]) + "," + std::to_string(o[1]) +
           "," + std::to_string(o[2]) + ")";
  }
  return out + " }";
}

void expectSameFootprints(const KernelFootprintModel& scalar,
                          const KernelFootprintModel& pencil,
                          const std::string& where) {
  ASSERT_EQ(scalar.reads.size(), pencil.reads.size()) << where;
  for (std::size_t i = 0; i < scalar.reads.size(); ++i) {
    EXPECT_EQ(scalar.reads[i].role, pencil.reads[i].role) << where;
    EXPECT_EQ(scalar.reads[i].observed, pencil.reads[i].observed)
        << where << " role " << scalar.reads[i].role << ": scalar "
        << fmtOffsets(scalar.reads[i].observed) << " vs pencil "
        << fmtOffsets(pencil.reads[i].observed);
  }
  EXPECT_EQ(scalar.output.observed, pencil.output.observed)
      << where << " output self-dependence";
  EXPECT_EQ(scalar.writes.observed, pencil.writes.observed)
      << where << " write set";
}

TEST(KernelCheckProps, PencilMatchesScalarEverywhere) {
  const std::vector<KernelShape> shapes = builtinStageShapes();
  for (const kernels::Stage stage : kernels::kStages) {
    for (int d = 0; d < 3; ++d) {
      const std::string tag = kernelStageTag(stage, d);
      const KernelShape* scalar = findShape(shapes, "scalar:" + tag);
      const KernelShape* pencil = findShape(shapes, "pencil:" + tag);
      ASSERT_NE(scalar, nullptr) << tag;
      ASSERT_NE(pencil, nullptr) << tag;
      for (const Pitch pitch : {Pitch::Padded, Pitch::Dense}) {
        for (const int size : {4, 6}) {
          ProbeOptions opts;
          opts.boxSize = size;
          opts.pitch = pitch;
          const std::string where =
              tag + (pitch == Pitch::Padded ? " padded" : " dense") +
              " N=" + std::to_string(size);
          expectSameFootprints(inferFootprint(*scalar, opts),
                               inferFootprint(*pencil, opts), where);
        }
      }
    }
  }
}

} // namespace
} // namespace fluxdiv::analysis
