// Tests for the ScheduleAdvisor: registry ranking reproduces the paper's
// qualitative result purely statically, the ranking is well-formed, and
// the blocked-wavefront tile recommendation respects the cache spec.

#include "analysis/advisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/variant.hpp"

namespace fluxdiv::analysis {
namespace {

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = 1024 * 1024;

CacheSpec spec(std::size_t l2, std::size_t llc) {
  CacheSpec s;
  s.l2Bytes = l2;
  s.llcBytes = llc;
  return s;
}

/// Predicted traffic of the best-ranked entry of a given family.
double bestOfFamily(const std::vector<RankedVariant>& ranked,
                    core::ScheduleFamily family) {
  for (const auto& rv : ranked) {
    if (rv.cfg.family == family) {
      return rv.cost.trafficBytes;
    }
  }
  ADD_FAILURE() << "family missing from ranking";
  return 0;
}

TEST(Advisor, RankingIsSortedAndCoversTheRegistry) {
  const ScheduleAdvisor advisor(spec(256 * kKiB, 6 * kMiB));
  const auto ranked = advisor.rank(32, 4);
  std::size_t valid = 0;
  for (const auto& cfg : core::enumerateVariants(32)) {
    valid += cfg.validFor(32) ? 1 : 0;
  }
  EXPECT_EQ(ranked.size(), valid);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].cost.trafficBytes, ranked[i].cost.trafficBytes);
  }
}

TEST(Advisor, LargeBoxRankingReproducesThePaper) {
  // Paper, Sec. VI: once the box working set exceeds the cache, the fused
  // and tiled schedules beat the baseline series of loops by a wide
  // margin. 128^3 on a 6 MiB LLC — predicted without executing a kernel.
  const ScheduleAdvisor advisor(spec(256 * kKiB, 6 * kMiB));
  const auto ranked = advisor.rank(128, 8);
  const double base =
      bestOfFamily(ranked, core::ScheduleFamily::SeriesOfLoops);
  EXPECT_GT(base,
            3.0 * bestOfFamily(ranked, core::ScheduleFamily::ShiftFuse));
  EXPECT_GT(base, 3.0 * bestOfFamily(
                            ranked, core::ScheduleFamily::BlockedWavefront));
  EXPECT_GT(base, 3.0 * bestOfFamily(
                            ranked, core::ScheduleFamily::OverlappedTiles));
  // And every baseline variant sits in the bottom of the table.
  const std::size_t half = ranked.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_NE(ranked[i].cfg.family, core::ScheduleFamily::SeriesOfLoops)
        << ranked[i].cost.variant;
  }
}

TEST(Advisor, SmallBoxRankingIsNearParity) {
  // At 16^3 everything fits the LLC and the families converge — the
  // paper's "schedules only separate once locality is lost" observation.
  const ScheduleAdvisor advisor(spec(256 * kKiB, 6 * kMiB));
  const auto ranked = advisor.rank(16, 4);
  ASSERT_FALSE(ranked.empty());
  const double best = ranked.front().cost.trafficBytes;
  const double worst = ranked.back().cost.trafficBytes;
  EXPECT_LT(worst, 2.0 * best);
}

TEST(Advisor, RecommendedTileFitsTheCaches) {
  const ScheduleAdvisor advisor(spec(256 * kKiB, 6 * kMiB));
  const TileAdvice advice = advisor.recommendBlockedTile(128, 8);
  EXPECT_EQ(advice.cfg.family, core::ScheduleFamily::BlockedWavefront);
  EXPECT_GT(advice.cfg.tileSize, 0);
  EXPECT_LT(advice.cfg.tileSize, 128);
  EXPECT_LE(advice.cost.maxItemBytes, 256.0 * kKiB);
  EXPECT_NE(advice.rationale.find("fits L2"), std::string::npos);
}

TEST(Advisor, TinyCachesFallBackToSmallestFootprint) {
  const ScheduleAdvisor advisor(spec(1 * kKiB, 2 * kKiB));
  const TileAdvice advice = advisor.recommendBlockedTile(64, 8);
  EXPECT_EQ(advice.cfg.tileSize, 4); // nothing fits; smallest footprint
  EXPECT_NE(advice.rationale.find("no blocked-wavefront tile fits"),
            std::string::npos);
}

TEST(Advisor, NoTileAvailableForTinyBoxes) {
  const ScheduleAdvisor advisor(spec(256 * kKiB, 6 * kMiB));
  const TileAdvice advice = advisor.recommendBlockedTile(4, 2);
  EXPECT_TRUE(advice.cost.variant.empty());
  EXPECT_NE(advice.rationale.find("too small"), std::string::npos);
}

TEST(Advisor, ExtensionsOnlyAddEntries) {
  const ScheduleAdvisor advisor(spec(256 * kKiB, 6 * kMiB));
  EXPECT_GT(advisor.rank(32, 4, true).size(),
            advisor.rank(32, 4, false).size());
}

} // namespace
} // namespace fluxdiv::analysis
