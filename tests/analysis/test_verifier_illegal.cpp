// Deliberately-broken schedules: each mutation in analysis/mutate.hpp must
// be rejected with the *right* DiagnosticKind, naming the offending stage
// pair and a plausible violating region — a verifier that rejects for the
// wrong reason would pass a weaker test.

#include <gtest/gtest.h>

#include <string>

#include "analysis/lower.hpp"
#include "analysis/mutate.hpp"
#include "analysis/verifier.hpp"
#include "core/variant.hpp"

namespace fluxdiv::analysis {
namespace {

using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// The slab-parallel baseline (CLI so each direction is one face phase
/// followed by one accumulate phase).
ScheduleModel baselineSlabs() {
  return lowerVariant(core::makeBaseline(ParallelGranularity::WithinBox,
                                         ComponentLoop::Inside),
                      grid::Box::cube(16), 4);
}

/// The per-cell wavefront schedule (carries all three flux dependences).
ScheduleModel cellWavefront() {
  return lowerVariant(core::makeShiftFuse(ParallelGranularity::WithinBox,
                                          ComponentLoop::Inside),
                      grid::Box::cube(16), 4);
}

/// Parallel overlapped tiles (recomputation + concurrent tile commits).
ScheduleModel overlappedTiles() {
  return lowerVariant(
      core::makeOverlapped(IntraTileSchedule::Basic, 8,
                           ParallelGranularity::WithinBox),
      grid::Box::cube(16), 4);
}

TEST(VerifierIllegal, MutationBaseModelsAreLegal) {
  const ScheduleVerifier v;
  EXPECT_TRUE(v.verify(baselineSlabs()).ok());
  EXPECT_TRUE(v.verify(cellWavefront()).ok());
  EXPECT_TRUE(v.verify(overlappedTiles()).ok());
}

TEST(VerifierIllegal, ShallowHaloRejected) {
  const Diagnostic d =
      ScheduleVerifier{}.verify(mutate::shallowHalo(baselineSlabs()));
  ASSERT_EQ(d.kind, DiagnosticKind::HaloTooShallow) << d.message();
  // The first stage to fall off the understated halo is the x face pass,
  // whose low faces read Phi0 two cells outside the valid region.
  EXPECT_EQ(d.stageA, "EvalFlux1[d=x]");
  EXPECT_TRUE(contains(d.stageB, "ghost exchange")) << d.message();
  EXPECT_TRUE(contains(d.stageB, "depth 1")) << d.message();
  ASSERT_FALSE(d.region.empty());
  EXPECT_EQ(d.region.lo(0), -2);
  EXPECT_EQ(d.region.hi(0), -2);
}

TEST(VerifierIllegal, WeakSkewRejected) {
  const Diagnostic d =
      ScheduleVerifier{}.verify(mutate::weakSkew(cellWavefront()));
  ASSERT_EQ(d.kind, DiagnosticKind::SkewTooSmall) << d.message();
  // Zeroing skew[2] breaks exactly the carry-z dependence: a cell would
  // read the z-flux its -z neighbor deposits on the same wavefront.
  EXPECT_TRUE(contains(d.stageA, "carry-z")) << d.message();
  EXPECT_TRUE(contains(d.stageB, "carry-z")) << d.message();
  EXPECT_TRUE(contains(d.itemA, "wavefront")) << d.message();
}

TEST(VerifierIllegal, ThinOverlapRejected) {
  const Diagnostic d =
      ScheduleVerifier{}.verify(mutate::thinOverlap(overlappedTiles()));
  ASSERT_EQ(d.kind, DiagnosticKind::RecomputeUncovered) << d.message();
  // A tile whose private x-flux recomputation is one face short starves
  // the first consumer of those fluxes (the x EvalFlux2 pass).
  EXPECT_TRUE(contains(d.stageA, "EvalFlux2[d=x")) << d.message();
  EXPECT_TRUE(contains(d.stageB, "EvalFlux1[d=x]")) << d.message();
  // The missing faces sit on the tile's high-x recompute boundary.
  ASSERT_FALSE(d.region.empty());
  EXPECT_EQ(d.region.lo(0), d.region.hi(0));
}

TEST(VerifierIllegal, OverlappingTileWritesRejected) {
  const Diagnostic d = ScheduleVerifier{}.verify(
      mutate::overlappingTileWrites(overlappedTiles()));
  ASSERT_EQ(d.kind, DiagnosticKind::WriteOverlap) << d.message();
  // Two *different* concurrent tiles must be named, and the violating
  // region must straddle a tile boundary (tile size 8 on a 16 box).
  EXPECT_NE(d.itemA, d.itemB);
  EXPECT_TRUE(contains(d.itemA, "tile")) << d.message();
  EXPECT_TRUE(contains(d.itemB, "tile")) << d.message();
  ASSERT_FALSE(d.region.empty());
  EXPECT_LE(d.region.lo(0), 8);
  EXPECT_GE(d.region.hi(0), 7);
}

TEST(VerifierIllegal, DroppedBarrierRejected) {
  // Phases of the slab-parallel CLI baseline come in (face, accumulate)
  // pairs per direction; index 4 is the z face pass. Merging it with the
  // z accumulate races a slab's flux-difference reads against its
  // neighbor's face writes (the z partition of faces and cells differs
  // between the two passes).
  const Diagnostic d = ScheduleVerifier{}.verify(
      mutate::droppedBarrier(baselineSlabs(), 4));
  ASSERT_EQ(d.kind, DiagnosticKind::ReadWriteRace) << d.message();
  EXPECT_TRUE(contains(d.stageA, "FluxDifference[d=z")) << d.message();
  EXPECT_TRUE(contains(d.stageB, "EvalFlux1[d=z]")) << d.message();
  EXPECT_NE(d.itemA, d.itemB);
}

TEST(VerifierIllegal, DiagnosticMessageNamesEverything) {
  const Diagnostic d =
      ScheduleVerifier{}.verify(mutate::shallowHalo(baselineSlabs()));
  const std::string msg = d.message();
  // The rendered message is what the runner's exception carries; it must
  // name the kind, both stages, and the violating region.
  EXPECT_TRUE(contains(msg, "halo-too-shallow")) << msg;
  EXPECT_TRUE(contains(msg, "EvalFlux1[d=x]")) << msg;
  EXPECT_TRUE(contains(msg, "ghost exchange")) << msg;
  EXPECT_TRUE(contains(msg, "(-2,")) << msg;
}

TEST(VerifierIllegal, EveryKindHasAName) {
  for (const auto k :
       {DiagnosticKind::Ok, DiagnosticKind::HaloTooShallow,
        DiagnosticKind::RecomputeUncovered, DiagnosticKind::ReadUncovered,
        DiagnosticKind::WriteOverlap, DiagnosticKind::ReadWriteRace,
        DiagnosticKind::SkewTooSmall}) {
    EXPECT_NE(diagnosticKindName(k), nullptr);
    EXPECT_GT(std::string(diagnosticKindName(k)).size(), 1u);
  }
}

} // namespace
} // namespace fluxdiv::analysis
