// Randomized property tests for the shared region algebra
// (analysis/region_ops) and commcheck's C1 exactness proof, both checked
// against brute-force per-cell oracles. The region-ops properties pin the
// primitives all three static checkers (verifier, graphcheck, commcheck)
// now share; the exactness property pins the whole C1 pipeline: over
// random layouts (box counts, sizes, ghost depths, per-axis periodicity,
// rank partitions) the checker's verdict must equal the per-cell count
// "every exchange-owned ghost cell covered exactly once", and the counted
// traffic must agree exactly with distsim.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/commcheck.hpp"
#include "analysis/region_ops.hpp"
#include "distsim/comm_model.hpp"
#include "distsim/rank_layout.hpp"
#include "grid/box.hpp"
#include "grid/copier.hpp"
#include "grid/layout.hpp"

namespace fluxdiv::analysis {
namespace {

using grid::Box;
using grid::Copier;
using grid::DisjointBoxLayout;
using grid::IntVect;
using grid::ProblemDomain;

/// Deterministic xorshift PRNG so failures replay from the test name.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  /// Uniform in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(
                                              hi - lo + 1));
  }
  bool coin() { return (next() & 1) != 0; }
};

Box randomBox(Rng& rng, int span) {
  const IntVect lo{rng.range(-span, span), rng.range(-span, span),
                   rng.range(-span, span)};
  const IntVect ext{rng.range(0, 4), rng.range(0, 4), rng.range(0, 4)};
  return Box(lo, lo + ext);
}

std::int64_t flatten(const IntVect& p, int span) {
  const std::int64_t w = 4 * span;
  return (p[0] + 2 * span) + w * ((p[1] + 2 * span) + w * (p[2] + 2 * span));
}

// ---------------------------------------------------------------------------
// Region-ops properties vs per-cell oracles.
// ---------------------------------------------------------------------------

TEST(RegionOpsProps, SubtractAllMatchesPerCellDifference) {
  constexpr int kSpan = 6;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const Box target = randomBox(rng, kSpan);
    std::vector<Box> cuts;
    const int nCuts = rng.range(0, 4);
    for (int i = 0; i < nCuts; ++i) {
      cuts.push_back(randomBox(rng, kSpan));
    }
    const std::vector<Box> pieces = subtractAll(target, cuts);
    // Pieces must be disjoint, inside the target, outside every cut, and
    // jointly cover every surviving cell.
    std::map<std::int64_t, int> covered;
    for (const Box& p : pieces) {
      EXPECT_TRUE(target.contains(p)) << "seed " << seed;
      grid::forEachCell(p, [&](int i, int j, int k) {
        covered[flatten({i, j, k}, kSpan)]++;
      });
    }
    std::int64_t expectCells = 0;
    grid::forEachCell(target, [&](int i, int j, int k) {
      const IntVect c{i, j, k};
      bool cut = false;
      for (const Box& b : cuts) {
        cut = cut || b.contains(c);
      }
      if (!cut) {
        ++expectCells;
        EXPECT_EQ(covered[flatten(c, kSpan)], 1)
            << "seed " << seed << " cell " << c;
      } else {
        EXPECT_EQ(covered.count(flatten(c, kSpan)), 0u)
            << "seed " << seed << " cell " << c;
      }
    });
    std::int64_t gotCells = 0;
    for (const Box& p : pieces) {
      gotCells += p.numPts();
    }
    EXPECT_EQ(gotCells, expectCells) << "seed " << seed;
  }
}

TEST(RegionOpsProps, CoverSetAgreesWithPerCellCoverage) {
  constexpr int kSpan = 6;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const Box target = randomBox(rng, kSpan);
    CoverSet cover;
    const int n = rng.range(0, 5);
    std::vector<Box> boxes;
    for (int i = 0; i < n; ++i) {
      boxes.push_back(randomBox(rng, kSpan));
      cover.add(boxes.back());
    }
    bool allCovered = true;
    grid::forEachCell(target, [&](int i, int j, int k) {
      const IntVect c{i, j, k};
      bool hit = false;
      for (const Box& b : boxes) {
        hit = hit || b.contains(c);
      }
      allCovered = allCovered && hit;
    });
    EXPECT_EQ(cover.covers(target), allCovered) << "seed " << seed;
    const Box missing = cover.firstMissing(target);
    EXPECT_EQ(missing.empty(), allCovered) << "seed " << seed;
    if (!missing.empty()) {
      // The witness is real: inside the target, outside every box.
      EXPECT_TRUE(target.contains(missing)) << "seed " << seed;
      grid::forEachCell(missing, [&](int i, int j, int k) {
        for (const Box& b : boxes) {
          EXPECT_FALSE(b.contains(IntVect{i, j, k})) << "seed " << seed;
        }
      });
    }
  }
}

TEST(RegionOpsProps, FirstPairOverlapAgreesWithPairwiseScan) {
  constexpr int kSpan = 6;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    std::vector<Box> boxes;
    const int n = rng.range(0, 6);
    for (int i = 0; i < n; ++i) {
      boxes.push_back(randomBox(rng, kSpan));
    }
    bool anyOverlap = false;
    for (std::size_t i = 0; i < boxes.size() && !anyOverlap; ++i) {
      for (std::size_t j = i + 1; j < boxes.size() && !anyOverlap; ++j) {
        anyOverlap = !boxes[i].empty() && !boxes[j].empty() &&
                     boxes[i].intersects(boxes[j]);
      }
    }
    const std::optional<PairOverlap> hit = firstPairOverlap(boxes);
    EXPECT_EQ(hit.has_value(), anyOverlap) << "seed " << seed;
    if (hit) {
      ASSERT_LT(hit->first, boxes.size());
      ASSERT_LT(hit->second, boxes.size());
      EXPECT_EQ(hit->region, boxes[hit->first] & boxes[hit->second])
          << "seed " << seed;
      EXPECT_FALSE(hit->region.empty()) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// C1 exactness vs a brute-force per-cell oracle over random layouts.
// ---------------------------------------------------------------------------

struct RandomLevel {
  DisjointBoxLayout dbl;
  int nghost = 1;
  int nranks = 1;
};

RandomLevel randomLevel(Rng& rng) {
  const IntVect counts{rng.range(1, 3), rng.range(1, 3), rng.range(1, 3)};
  const IntVect sizes{rng.range(4, 8), rng.range(4, 8), rng.range(4, 8)};
  const std::array<bool, 3> periodic{rng.coin(), rng.coin(), rng.coin()};
  const Box domBox(IntVect::zero(),
                   IntVect{counts[0] * sizes[0] - 1,
                           counts[1] * sizes[1] - 1,
                           counts[2] * sizes[2] - 1});
  RandomLevel lvl{
      DisjointBoxLayout(ProblemDomain(domBox, periodic), sizes), 1, 1};
  const int minSide = std::min(sizes[0], std::min(sizes[1], sizes[2]));
  lvl.nghost = rng.range(1, std::min(4, minSide));
  lvl.nranks = rng.range(1, static_cast<int>(lvl.dbl.size()));
  return lvl;
}

/// Per-cell oracle: counts, for every ghost cell of every box, how many
/// plan ops write it, and checks every op reads valid source interior.
/// Returns a description of the first violation, or empty when the plan
/// is exact.
std::string oracleCheck(const RandomLevel& lvl, const Copier& copier) {
  const ProblemDomain& dom = lvl.dbl.domain();
  for (std::size_t b = 0; b < lvl.dbl.size(); ++b) {
    const Box valid = lvl.dbl.box(b);
    const Box ghosted = valid.grow(lvl.nghost);
    std::string violation;
    grid::forEachCell(ghosted, [&](int i, int j, int k) {
      const IntVect c{i, j, k};
      if (valid.contains(c) || !violation.empty()) {
        return;
      }
      IntVect shift;
      const bool owned = dom.wrapShift(c, shift);
      int writers = 0;
      for (const grid::CopyOp& op : copier.ops()) {
        if (op.destBox == b && op.destRegion.contains(c)) {
          ++writers;
        }
      }
      const int expected = owned ? 1 : 0;
      if (writers != expected) {
        violation = "box " + std::to_string(b) + " ghost cell expected " +
                    std::to_string(expected) + " writer(s), got " +
                    std::to_string(writers);
      }
    });
    if (!violation.empty()) {
      return violation;
    }
  }
  for (const grid::CopyOp& op : copier.ops()) {
    const Box src = op.destRegion.shift(op.srcShift);
    if (!lvl.dbl.box(op.srcBox).contains(src)) {
      return "op reads outside source box " + std::to_string(op.srcBox);
    }
  }
  return {};
}

TEST(CommCheckProps, ExactnessAgreesWithPerCellOracle) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed + 1000);
    const RandomLevel lvl = randomLevel(rng);
    const Copier copier(lvl.dbl, lvl.nghost);
    const std::string oracle = oracleCheck(lvl, copier);
    EXPECT_EQ(oracle, std::string{}) << "seed " << seed;

    CommPlanModel model =
        buildCommPlanModel(lvl.dbl, copier, rng.range(1, 5));
    const distsim::RankDecomposition ranks(lvl.dbl, lvl.nranks);
    applyRankPartition(model, ranks);
    const CommCheckReport rep = checkCommPlan(model);
    for (const CommDiagnostic& d : rep.diagnostics) {
      ADD_FAILURE() << "seed " << seed << " (" << model.name << ", "
                    << lvl.nranks << " ranks): " << d.message();
    }
    const std::vector<std::string> mismatches = crossValidateCommCost(
        rep, distsim::analyzeExchange(ranks, copier, model.ncomp));
    for (const std::string& m : mismatches) {
      ADD_FAILURE() << "seed " << seed << ": " << m;
    }
  }
}

TEST(CommCheckProps, MutatedPlansRejectedWhereOracleRejects) {
  // Close the loop the other way: a random single-op corruption that the
  // per-cell oracle would flag must also be flagged by the checker.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed + 5000);
    const RandomLevel lvl = randomLevel(rng);
    const Copier copier(lvl.dbl, lvl.nghost);
    CommPlanModel model = buildCommPlanModel(lvl.dbl, copier, 1);
    if (model.ops.empty()) {
      continue;
    }
    const std::size_t victim =
        static_cast<std::size_t>(rng.next() % model.ops.size());
    // Dropping any op leaves its dest sector uncovered: the oracle's
    // count goes to 0 there, and the checker must report a GhostGap.
    model.ops.erase(model.ops.begin() +
                    static_cast<std::ptrdiff_t>(victim));
    const CommCheckReport rep = checkCommPlan(model);
    bool sawGap = false;
    for (const CommDiagnostic& d : rep.diagnostics) {
      sawGap = sawGap || d.kind == CommDiagKind::GhostGap;
    }
    EXPECT_TRUE(sawGap) << "seed " << seed;
  }
}

} // namespace
} // namespace fluxdiv::analysis
