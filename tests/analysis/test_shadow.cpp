// Shadow-memory race detector tests. ShadowMemory and CheckedAccessor are
// compiled in every build and tested directly; the FArrayBox/runner
// integration (which is what catches a racy executor in practice) is
// exercised under FLUXDIV_SHADOW_CHECK, including a seeded cross-worker
// overlapping-commit schedule that must be flagged at the shared plane.

#include "grid/shadow.hpp"

#include <omp.h>

#include <gtest/gtest.h>

#include "grid/box.hpp"
#include "grid/farraybox.hpp"

#ifdef FLUXDIV_SHADOW_CHECK
#include "core/runner.hpp"
#include "grid/layout.hpp"
#include "grid/leveldata.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#endif

namespace fluxdiv::grid {
namespace {

using Kind = ShadowMemory::ViolationKind;

// ShadowMemory owns a mutex and atomics and is deliberately immovable, so
// the tests share one fixture-held instance shaped in SetUp.
class ShadowMemoryTest : public ::testing::Test {
protected:
  void SetUp() override { s.define(Box::cube(8), 2); }
  ShadowMemory s;
};

TEST_F(ShadowMemoryTest, CleanSingleWriterReadAfterWrite) {
  const IntVect p(3, 4, 5);
  s.recordWrite(p, 1, /*worker=*/0);
  s.recordRead(p, 1, /*worker=*/0);
  // Re-writing one's own slot (directional accumulation) is not a race.
  s.recordWrite(p, 1, /*worker=*/0);
  EXPECT_EQ(s.violationCount(), 0u);
}

TEST_F(ShadowMemoryTest, CrossWorkerSameEpochWriteIsFlagged) {
  const IntVect p(1, 2, 3);
  s.recordWrite(p, 0, /*worker=*/0);
  s.recordWrite(p, 0, /*worker=*/1);
  ASSERT_EQ(s.violationCount(), 1u);
  const auto v = s.violations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Kind::WriteWrite);
  EXPECT_EQ(v[0].cell, p);
  EXPECT_EQ(v[0].comp, 0);
  // Both workers are named, in either order.
  EXPECT_NE(v[0].workerA, v[0].workerB);
  EXPECT_TRUE(v[0].workerA == 0 || v[0].workerA == 1);
  EXPECT_TRUE(v[0].workerB == 0 || v[0].workerB == 1);
}

TEST_F(ShadowMemoryTest, EpochBoundarySeparatesWriters) {
  const IntVect p(0, 0, 0);
  s.recordWrite(p, 0, /*worker=*/0);
  s.beginEpoch(); // the barrier between evaluations
  s.recordWrite(p, 0, /*worker=*/1);
  EXPECT_EQ(s.violationCount(), 0u);
}

TEST_F(ShadowMemoryTest, ReadBeforeWriteFlaggedAtExactSlot) {
  const IntVect p(7, 0, 2);
  s.recordRead(p, 1, /*worker=*/3);
  ASSERT_EQ(s.violationCount(), 1u);
  const auto v = s.violations();
  EXPECT_EQ(v[0].kind, Kind::ReadBeforeWrite);
  EXPECT_EQ(v[0].cell, p);
  EXPECT_EQ(v[0].comp, 1);
  EXPECT_EQ(v[0].workerA, 3);
  // A stale tag from the previous epoch is equally a read-before-write.
  s.clearViolations();
  s.recordWrite(p, 1, /*worker=*/0);
  s.beginEpoch();
  s.recordRead(p, 1, /*worker=*/0);
  EXPECT_EQ(s.violationCount(), 1u);
}

TEST_F(ShadowMemoryTest, FillAllMarksEverySlotProduced) {
  s.fillAll(); // e.g. exchanged ghost data: readable by anyone
  s.recordRead(IntVect(0, 0, 0), 0, /*worker=*/0);
  s.recordRead(IntVect(7, 7, 7), 1, /*worker=*/5);
  EXPECT_EQ(s.violationCount(), 0u);
  // ...and overwriting pre-filled data is not a write-write race.
  s.recordWrite(IntVect(4, 4, 4), 0, /*worker=*/2);
  EXPECT_EQ(s.violationCount(), 0u);
}

TEST_F(ShadowMemoryTest, RegionWriteCoversExactlyTheRegion) {
  const Box region(IntVect(1, 1, 1), IntVect(3, 3, 3));
  s.recordWriteRegion(region, 0, 2, /*worker=*/0);
  s.recordRead(IntVect(3, 3, 3), 1, /*worker=*/0);
  EXPECT_EQ(s.violationCount(), 0u);
  s.recordRead(IntVect(4, 3, 3), 1, /*worker=*/0); // one past the region
  EXPECT_EQ(s.violationCount(), 1u);
}

TEST_F(ShadowMemoryTest, ViolationCountKeepsCountingPastStorageBound) {
  const std::size_t n = ShadowMemory::kMaxStored + 20;
  for (std::size_t i = 0; i < n; ++i) {
    // Alternating writers on one slot: every write is a fresh violation.
    s.recordWrite(IntVect(0, 0, 0), 0, static_cast<int>(i % 2));
  }
  EXPECT_EQ(s.violationCount(), n - 1);
  EXPECT_EQ(s.violations().size(), ShadowMemory::kMaxStored);
  s.clearViolations();
  EXPECT_EQ(s.violationCount(), 0u);
  EXPECT_TRUE(s.violations().empty());
}

TEST_F(ShadowMemoryTest, MessageNamesCellCompAndWorkers) {
  s.recordWrite(IntVect(2, 5, 6), 1, 0);
  s.recordWrite(IntVect(2, 5, 6), 1, 7);
  const auto v = s.violations();
  ASSERT_EQ(v.size(), 1u);
  const std::string msg = v[0].message();
  EXPECT_NE(msg.find("(2,5,6)"), std::string::npos) << msg;
  EXPECT_NE(msg.find('7'), std::string::npos) << msg;
}

TEST_F(ShadowMemoryTest, SeededCrossWorkerOmpRace) {
  // The race the detector exists for: an OpenMP team writing one slot in
  // the same epoch. With one write per worker, every worker after the
  // first observes a tag from a different worker.
  int team = 1;
#pragma omp parallel num_threads(4)
  {
#pragma omp single
    team = omp_get_num_threads();
    s.recordWrite(IntVect(3, 3, 3), 0, omp_get_thread_num());
  }
  EXPECT_EQ(s.violationCount(), static_cast<std::size_t>(team - 1));
  if (team > 1) {
    EXPECT_EQ(s.violations()[0].kind, Kind::WriteWrite);
  }
}

TEST(CheckedAccessor, RoundTripAndRaceDetection) {
  FArrayBox fab(Box::cube(4), 2);
  ShadowMemory shadow;
  shadow.define(fab.box(), fab.nComp());
  CheckedAccessor w0(fab, shadow, /*worker=*/0);
  CheckedAccessor w1(fab, shadow, /*worker=*/1);
  w0.write(IntVect(1, 2, 3), 1, 42.0);
  EXPECT_EQ(w0.read(IntVect(1, 2, 3), 1), 42.0);
  EXPECT_EQ(shadow.violationCount(), 0u);
  w1.write(IntVect(1, 2, 3), 1, 43.0); // cross-worker, same epoch
  ASSERT_EQ(shadow.violationCount(), 1u);
  EXPECT_EQ(shadow.violations()[0].kind, Kind::WriteWrite);
}

TEST(CheckedAccessor, OutOfBoundsIsFlaggedNotDereferenced) {
  FArrayBox fab(Box::cube(4), 2);
  ShadowMemory shadow;
  shadow.define(fab.box(), fab.nComp());
  CheckedAccessor acc(fab, shadow, /*worker=*/0);
  acc.write(IntVect(4, 0, 0), 0, 1.0);  // x past the box
  (void)acc.read(IntVect(0, 0, 0), 2);  // component past nComp
  acc.write(IntVect(0, -1, 0), 1, 2.0); // y below the box
  ASSERT_EQ(shadow.violationCount(), 3u);
  for (const auto& v : shadow.violations()) {
    EXPECT_EQ(v.kind, Kind::OutOfBounds);
  }
  // The fab itself was never touched.
  for (int c = 0; c < 2; ++c) {
    EXPECT_EQ(fab(IntVect(0, 0, 0), c), 0.0);
  }
}

#ifdef FLUXDIV_SHADOW_CHECK

TEST(ShadowIntegration, OverlappingTileCommitsAreCaught) {
  // A real broken overlapped-tile schedule: two concurrent tiles commit
  // their *grown* regions (the overlappingTileWrites mutation, executed):
  // both workers write the shared plane x = 8 in the same epoch.
  FArrayBox phi1(Box::cube(16), 1);
  phi1.shadowBeginEpoch();
  const Box tileA(IntVect(0, 0, 0), IntVect(8, 15, 15));
  const Box tileB(IntVect(8, 0, 0), IntVect(15, 15, 15));
  int team = 1;
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    team = omp_get_num_threads();
    const int tid = omp_get_thread_num();
    phi1.shadowRecordWrite(tid == 0 ? tileA : tileB, 0, 1, tid);
  }
  if (team < 2) {
    GTEST_SKIP() << "needs two OpenMP threads to race";
  }
  ASSERT_GT(phi1.shadow().violationCount(), 0u);
  const auto v = phi1.shadow().violations();
  EXPECT_EQ(v[0].kind, Kind::WriteWrite);
  EXPECT_EQ(v[0].cell[0], 8); // the shared plane
  EXPECT_NE(v[0].workerA, v[0].workerB);
}

TEST(ShadowIntegration, DisjointTileCommitsAreClean) {
  FArrayBox phi1(Box::cube(16), 1);
  phi1.shadowBeginEpoch();
  const Box tileA(IntVect(0, 0, 0), IntVect(7, 15, 15));
  const Box tileB(IntVect(8, 0, 0), IntVect(15, 15, 15));
#pragma omp parallel num_threads(2)
  {
    const int tid = omp_get_thread_num();
    phi1.shadowRecordWrite(tid == 0 ? tileA : tileB, 0, 1, tid);
  }
  EXPECT_EQ(phi1.shadow().violationCount(), 0u);
}

TEST(ShadowIntegration, LegalRunnerSchedulesRunClean) {
  // End-to-end: the instrumented executors run a legal schedule twice
  // (the runner advances the epoch between evaluations) without the
  // shadow flagging anything — i.e. no throw from the runner's check.
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(16)), 16);
  LevelData phi0(dbl, kernels::kNumComp, kernels::kNumGhost);
  LevelData phi1(dbl, kernels::kNumComp, 0);
  kernels::initializeExemplar(phi0);
  core::FluxDivRunner runner(
      core::makeShiftFuse(core::ParallelGranularity::WithinBox), 2);
  EXPECT_NO_THROW(runner.run(phi0, phi1));
  EXPECT_NO_THROW(runner.run(phi0, phi1));
}

#endif // FLUXDIV_SHADOW_CHECK

} // namespace
} // namespace fluxdiv::grid
