#include "analysis/region.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "grid/intvect.hpp"

namespace fluxdiv::analysis {
namespace {

using grid::Box;
using grid::IntVect;

/// Exact cell count of a union of disjoint boxes.
std::int64_t totalCells(const std::vector<Box>& boxes) {
  std::int64_t n = 0;
  for (const auto& b : boxes) {
    n += b.numPts();
  }
  return n;
}

/// Exhaustive membership check: every cell of `a` is in `pieces` iff it is
/// not in `b`, and `pieces` are pairwise disjoint.
void checkDiffExact(const Box& a, const Box& b) {
  const std::vector<Box> pieces = boxDiff(a, b);
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    EXPECT_FALSE(pieces[i].empty());
    EXPECT_TRUE(a.contains(pieces[i]));
    EXPECT_FALSE(pieces[i].intersects(b));
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_FALSE(pieces[i].intersects(pieces[j]))
          << "pieces " << i << " and " << j << " overlap";
    }
  }
  const std::int64_t expect = a.numPts() - (a & b).numPts();
  EXPECT_EQ(totalCells(pieces), expect);
}

TEST(RegionAlgebra, DiffDisjointReturnsWhole) {
  const Box a = Box::cube(4);
  const Box b = Box::cube(4, IntVect(10, 0, 0));
  const std::vector<Box> d = boxDiff(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], a);
}

TEST(RegionAlgebra, DiffCoveredReturnsEmpty) {
  const Box a = Box::cube(4);
  const Box b = a.grow(1);
  EXPECT_TRUE(boxDiff(a, b).empty());
  EXPECT_TRUE(boxDiff(a, a).empty());
}

TEST(RegionAlgebra, DiffPartialOverlapsAreExact) {
  const Box a(IntVect::zero(), IntVect(7, 7, 7));
  // Corner, face, edge, interior, and pencil-shaped subtrahends.
  checkDiffExact(a, Box(IntVect(4, 4, 4), IntVect(10, 10, 10)));
  checkDiffExact(a, Box(IntVect(-2, 0, 0), IntVect(1, 7, 7)));
  checkDiffExact(a, Box(IntVect(3, 3, -5), IntVect(5, 5, 20)));
  checkDiffExact(a, Box(IntVect(2, 2, 2), IntVect(5, 5, 5)));
  checkDiffExact(a, Box(IntVect(0, 3, 0), IntVect(7, 3, 7)));
}

TEST(RegionAlgebra, CoveredBySingleBox) {
  const Box target = Box::cube(6);
  EXPECT_TRUE(covered(target, {target}));
  EXPECT_TRUE(covered(target, {target.grow(2)}));
  EXPECT_FALSE(covered(target, {Box::cube(5)}));
  EXPECT_FALSE(covered(target, {}));
}

TEST(RegionAlgebra, CoveredByUnionOfPieces) {
  const Box target = Box::cube(8);
  // Two overlapping halves cover; two with a one-plane gap do not.
  const Box lowHalf(IntVect::zero(), IntVect(4, 7, 7));
  const Box highHalf(IntVect(4, 0, 0), IntVect(7, 7, 7));
  EXPECT_TRUE(covered(target, {lowHalf, highHalf}));
  const Box gapHigh(IntVect(5, 0, 0), IntVect(7, 7, 7));
  const Box lowThin(IntVect::zero(), IntVect(3, 7, 7));
  EXPECT_FALSE(covered(target, {lowThin, gapHigh}));
}

TEST(RegionAlgebra, FirstUncoveredNamesAMissingRegion) {
  const Box target = Box::cube(8);
  const Box lowThin(IntVect::zero(), IntVect(3, 7, 7));
  const Box gapHigh(IntVect(5, 0, 0), IntVect(7, 7, 7));
  const Box miss = firstUncovered(target, {lowThin, gapHigh});
  ASSERT_FALSE(miss.empty());
  // The reported region is inside the target, disjoint from the cover,
  // and contains the gap plane x == 4.
  EXPECT_TRUE(target.contains(miss));
  EXPECT_FALSE(miss.intersects(lowThin));
  EXPECT_FALSE(miss.intersects(gapHigh));
  EXPECT_LE(miss.lo(0), 4);
  EXPECT_GE(miss.hi(0), 4);
}

TEST(RegionAlgebra, FirstUncoveredEmptyWhenCovered) {
  const Box target = Box::cube(8);
  EXPECT_TRUE(firstUncovered(target, {target}).empty());
}

TEST(RegionAlgebra, EmptyTargetAlwaysCovered) {
  const Box empty;
  EXPECT_TRUE(covered(empty, {}));
  EXPECT_TRUE(firstUncovered(empty, {}).empty());
}

TEST(RegionAlgebra, UnionPtsSingleAndDisjoint) {
  EXPECT_EQ(unionPts({}), 0);
  EXPECT_EQ(unionPts({Box::cube(4)}), 64);
  const Box far(IntVect(100, 0, 0), IntVect(103, 3, 3));
  EXPECT_EQ(unionPts({Box::cube(4), far}), 128);
}

TEST(RegionAlgebra, UnionPtsOverlapCountedOnce) {
  // Two 4^3 cubes sharing a 2x4x4 slab: 64 + 64 - 32.
  const Box a = Box::cube(4);
  const Box b(IntVect(2, 0, 0), IntVect(5, 3, 3));
  EXPECT_EQ(unionPts({a, b}), 96);
  // Fully nested boxes add nothing.
  EXPECT_EQ(unionPts({a, Box::cube(2), a}), 64);
}

TEST(RegionAlgebra, UnionPtsIgnoresEmptyBoxes) {
  EXPECT_EQ(unionPts({Box(), Box::cube(3), Box()}), 27);
}

TEST(RegionAlgebra, UnionPtsMatchesStencilInclusionExclusion) {
  // The shifted-stencil shape the cost model measures: a box unioned with
  // its one-cell shifts along each axis. |U| checked against a manual
  // cell count.
  const Box base = Box::cube(8);
  std::vector<Box> shifted = {base};
  for (int d = 0; d < 3; ++d) {
    shifted.push_back(base.shift(IntVect::basis(d)));
    shifted.push_back(base.shift(-IntVect::basis(d)));
  }
  std::int64_t count = 0;
  const Box hull = base.grow(1);
  grid::forEachCell(hull, [&](int i, int j, int k) {
    const IntVect p(i, j, k);
    for (const Box& s : shifted) {
      if (s.contains(p)) {
        ++count;
        return;
      }
    }
  });
  EXPECT_EQ(unionPts(shifted), count);
}

} // namespace
} // namespace fluxdiv::analysis
