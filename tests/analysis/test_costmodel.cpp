// Unit tests for the static cost model: working-set orderings, traffic
// regimes, recomputation accounting, parallelism metrics, and the
// structured cost notes. Numeric agreement with the cache simulator is
// covered separately in test_costmodel_xval.cpp.

#include "analysis/costmodel.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/variant.hpp"
#include "harness/machine.hpp"
#include "kernels/exemplar.hpp"

namespace fluxdiv::analysis {
namespace {

CacheSpec spec(std::size_t l2, std::size_t llc) {
  CacheSpec s;
  s.l2Bytes = l2;
  s.llcBytes = llc;
  return s;
}

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = 1024 * 1024;

bool hasNote(const CostReport& r, CostNoteKind kind) {
  return std::any_of(r.notes.begin(), r.notes.end(),
                     [&](const CostNote& n) { return n.kind == kind; });
}

TEST(CostModel, ReportBasicsAreConsistent) {
  const auto rep = analyzeCost(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 16, 1,
      spec(256 * kKiB, 6 * kMiB));
  EXPECT_EQ(rep.validCells, 16 * 16 * 16);
  EXPECT_GT(rep.workingSetBytes, 0);
  EXPECT_GT(rep.trafficBytes, 0);
  EXPECT_GT(rep.compulsoryBytes, 0);
  EXPECT_NEAR(rep.bytesPerCell * static_cast<double>(rep.validCells),
              rep.trafficBytes, 1.0);
  ASSERT_FALSE(rep.phases.empty());
  double maxPhase = 0;
  for (const auto& p : rep.phases) {
    maxPhase = std::max(maxPhase, p.workingSetBytes);
  }
  EXPECT_DOUBLE_EQ(rep.workingSetBytes, maxPhase);
}

TEST(CostModel, FusionShrinksWorkingSetAndTraffic) {
  // The paper's core claim, statically: shift-fuse needs fewer distinct
  // bytes live and moves less DRAM traffic than the baseline series of
  // loops, which streams full flux temporaries between loop nests.
  const CacheSpec s = spec(256 * kKiB, 512 * kKiB);
  const auto base = analyzeCost(
      core::makeBaseline(core::ParallelGranularity::OverBoxes,
                         core::ComponentLoop::Inside),
      32, 1, s);
  const auto fused = analyzeCost(
      core::makeShiftFuse(core::ParallelGranularity::OverBoxes,
                          core::ComponentLoop::Inside),
      32, 1, s);
  EXPECT_LT(fused.workingSetBytes, base.workingSetBytes);
  EXPECT_LT(fused.trafficBytes, base.trafficBytes);
}

TEST(CostModel, BlockedTilesShrinkConcurrentWorkingSet) {
  // Within-box blocked wavefront holds only a front of tiles live, far
  // below the whole-box working set of the serial schedule.
  const CacheSpec s = spec(256 * kKiB, 6 * kMiB);
  const auto serial = analyzeCost(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 32, 1, s);
  const auto tiled = analyzeCost(
      core::makeBlockedWF(8, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Inside),
      32, 4, s);
  EXPECT_LT(tiled.workingSetBytes, serial.workingSetBytes);
  EXPECT_LT(tiled.maxItemBytes, tiled.workingSetBytes);
}

TEST(CostModel, FitsInCacheRegimeLandsNearCompulsoryFloor) {
  // With an LLC larger than every distinct byte the schedule touches, one
  // evaluation fetches each byte once: traffic close to the floor, and
  // far below the same schedule priced against a small cache.
  const auto big = analyzeCost(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 32, 1,
      spec(256 * kKiB, 64 * kMiB));
  EXPECT_LT(big.trafficBytes, 1.2 * big.compulsoryBytes);
  const auto small = analyzeCost(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 32, 1,
      spec(256 * kKiB, 512 * kKiB));
  EXPECT_GT(small.trafficBytes, 2.0 * big.trafficBytes);
}

TEST(CostModel, CapacityBoundNoteNamesThePhase) {
  const auto rep = analyzeCost(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 32, 1,
      spec(64 * kKiB, 256 * kKiB));
  EXPECT_TRUE(rep.capacityBound);
  ASSERT_TRUE(hasNote(rep, CostNoteKind::CapacityBound));
  for (const auto& n : rep.notes) {
    if (n.kind == CostNoteKind::CapacityBound) {
      EXPECT_FALSE(n.where.empty());
      EXPECT_GT(n.actualBytes, n.limitBytes);
      EXPECT_NE(n.message().find("capacity-bound"), std::string::npos);
      EXPECT_NE(n.message().find(n.where), std::string::npos);
    }
  }
  const auto fits = analyzeCost(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 16, 1,
      spec(256 * kKiB, 64 * kMiB));
  EXPECT_FALSE(fits.capacityBound);
  EXPECT_FALSE(hasNote(fits, CostNoteKind::CapacityBound));
}

TEST(CostModel, RecomputeZeroOutsideOverlappedTiles) {
  const CacheSpec s = spec(256 * kKiB, 6 * kMiB);
  for (const auto& cfg :
       {core::makeBaseline(core::ParallelGranularity::OverBoxes),
        core::makeShiftFuse(core::ParallelGranularity::WithinBox),
        core::makeBlockedWF(8, core::ParallelGranularity::WithinBox,
                            core::ComponentLoop::Inside)}) {
    const auto rep = analyzeCost(cfg, 32, 4, s);
    EXPECT_DOUBLE_EQ(rep.recomputeCells, 0) << rep.variant;
    EXPECT_DOUBLE_EQ(rep.recomputeFraction, 0) << rep.variant;
  }
}

TEST(CostModel, RecomputeGrowsAsOverlappedTilesShrink) {
  // Halo recomputation is a surface-to-volume effect: smaller tiles
  // duplicate a larger fraction of the flux evaluations.
  const CacheSpec s = spec(256 * kKiB, 6 * kMiB);
  double prev = 0;
  for (const int tile : {16, 8, 4}) {
    const auto rep = analyzeCost(
        core::makeOverlapped(core::IntraTileSchedule::Basic, tile,
                             core::ParallelGranularity::OverBoxes),
        32, 1, s);
    EXPECT_GT(rep.recomputeFraction, prev) << rep.variant;
    EXPECT_LT(rep.recomputeFraction, 1.0) << rep.variant;
    prev = rep.recomputeFraction;
  }
}

TEST(CostModel, RecomputeIndependentOfParallelGranularity) {
  // The duplicated volume is a property of the tiling, not of whether
  // tiles run serially in one item or as concurrent items.
  const CacheSpec s = spec(256 * kKiB, 6 * kMiB);
  const auto serial = analyzeCost(
      core::makeOverlapped(core::IntraTileSchedule::Basic, 8,
                           core::ParallelGranularity::OverBoxes),
      32, 1, s);
  const auto parallel = analyzeCost(
      core::makeOverlapped(core::IntraTileSchedule::Basic, 8,
                           core::ParallelGranularity::WithinBox),
      32, 4, s);
  EXPECT_NEAR(serial.recomputeFraction, parallel.recomputeFraction, 1e-12);
}

TEST(CostModel, HighRecomputeNoteAboveThreshold) {
  // 4^3 tiles on a 32^3 box duplicate ~40% of the flux evaluations —
  // well above the note threshold; 16^3 tiles stay below it.
  const CacheSpec s = spec(256 * kKiB, 6 * kMiB);
  const auto small = analyzeCost(
      core::makeOverlapped(core::IntraTileSchedule::Basic, 4,
                           core::ParallelGranularity::OverBoxes),
      32, 1, s);
  EXPECT_TRUE(hasNote(small, CostNoteKind::HighRecompute));
  const auto large = analyzeCost(
      core::makeOverlapped(core::IntraTileSchedule::Basic, 16,
                           core::ParallelGranularity::OverBoxes),
      32, 1, s);
  EXPECT_FALSE(hasNote(large, CostNoteKind::HighRecompute));
}

TEST(CostModel, ParallelismMetricsDistinguishSchedules) {
  const CacheSpec s = spec(256 * kKiB, 6 * kMiB);
  const auto serial = analyzeCost(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 32, 1, s);
  EXPECT_EQ(serial.maxConcurrency, 1);
  EXPECT_EQ(serial.barrierCount, 1);
  EXPECT_EQ(serial.frontCount, 0);

  const auto ot = analyzeCost(
      core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 8,
                           core::ParallelGranularity::WithinBox),
      32, 4, s);
  EXPECT_EQ(ot.maxConcurrency, 4 * 4 * 4); // every tile is independent
  EXPECT_EQ(ot.barrierCount, 1);

  const auto wf = analyzeCost(
      core::makeShiftFuse(core::ParallelGranularity::WithinBox), 32, 4, s);
  EXPECT_GT(wf.frontCount, 0);
  EXPECT_GT(wf.maxConcurrency, 1);

  const auto bwf = analyzeCost(
      core::makeBlockedWF(8, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Inside),
      32, 4, s);
  EXPECT_GT(bwf.barrierCount, 1); // one barrier per tile front
  EXPECT_GT(bwf.avgConcurrency, 1.0);
}

TEST(CostModel, WorkerCountBoundsConcurrentScratch) {
  // Available concurrency is thousands of tiles, but scratch is only held
  // by executing workers: the phase working set must scale with nWorkers,
  // not with the item count.
  const CacheSpec s = spec(256 * kKiB, 6 * kMiB);
  const auto cfg = core::makeOverlapped(
      core::IntraTileSchedule::ShiftFuse, 8,
      core::ParallelGranularity::WithinBox);
  const auto few = analyzeCost(cfg, 32, 2, s);
  const auto many = analyzeCost(cfg, 32, 32, s);
  EXPECT_LT(few.workingSetBytes, many.workingSetBytes);
  EXPECT_EQ(few.maxConcurrency, many.maxConcurrency);
}

TEST(CostModel, CacheSpecFromMachineUsesProbedLevels) {
  harness::MachineInfo info;
  info.caches = {{1, "Data", 32 * kKiB, 64, 8},
                 {2, "Unified", 512 * kKiB, 64, 8},
                 {3, "Unified", 4 * kMiB, 64, 16}};
  const CacheSpec s = CacheSpec::fromMachine(info);
  EXPECT_EQ(s.l2Bytes, 512 * kKiB);
  EXPECT_EQ(s.llcBytes, 4 * kMiB);
  EXPECT_EQ(s.lineBytes, 64u);
}

TEST(CostModel, PaddedPitchInflatesWorkingSetsButNotTraffic) {
  // Pricing the padded fab allocation (advisor --pad) rounds every
  // region's x-extent up to the pad multiple: working sets can only grow.
  // Traffic is a logical-bytes prediction and must be untouched — pad
  // lanes are never referenced, and the CacheSim oracle replays a dense
  // trace (the xval tolerance is pinned at xPadDoubles == 1).
  const CacheSpec dense = spec(256 * kKiB, 6 * kMiB);
  CacheSpec padded = dense;
  padded.xPadDoubles = 8;
  for (const auto& cfg :
       {core::makeBaseline(core::ParallelGranularity::OverBoxes),
        core::makeShiftFuse(core::ParallelGranularity::OverBoxes,
                            core::ComponentLoop::Inside),
        core::makeBlockedWF(4, core::ParallelGranularity::OverBoxes,
                            core::ComponentLoop::Inside),
        core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 4,
                             core::ParallelGranularity::OverBoxes)}) {
    const auto d = analyzeCost(cfg, 12, 1, dense);
    const auto p = analyzeCost(cfg, 12, 1, padded);
    EXPECT_GE(p.workingSetBytes, d.workingSetBytes) << cfg.name();
    EXPECT_GT(p.workingSetBytes, d.workingSetBytes)
        << cfg.name() << ": 12-wide extents must actually round up";
    EXPECT_GE(p.maxItemBytes, d.maxItemBytes) << cfg.name();
    // Pad-lane growth is bounded by one pad stretch per x-row.
    EXPECT_LE(p.workingSetBytes, 2.0 * d.workingSetBytes) << cfg.name();
    EXPECT_DOUBLE_EQ(p.trafficBytes, d.trafficBytes) << cfg.name();
    EXPECT_DOUBLE_EQ(p.recomputeCells, d.recomputeCells) << cfg.name();
  }
}

TEST(CostModel, PaddedWorkingSetIsMonotoneInThePadMultiple) {
  const auto cfg = core::makeBaseline(core::ParallelGranularity::OverBoxes);
  double prev = 0;
  for (const int pad : {1, 2, 4, 8, 16}) {
    CacheSpec s = spec(256 * kKiB, 6 * kMiB);
    s.xPadDoubles = pad;
    const double ws = analyzeCost(cfg, 12, 1, s).workingSetBytes;
    EXPECT_GE(ws, prev) << "pad " << pad;
    prev = ws;
  }
}

TEST(CostModel, CacheSpecFromMachineSurvivesFailedDetection) {
  // A machine whose cache probe failed entirely must still yield usable
  // capacities (the documented defaults), never zero.
  const CacheSpec s = CacheSpec::fromMachine(harness::MachineInfo{});
  EXPECT_GT(s.l2Bytes, 0u);
  EXPECT_EQ(s.llcBytes, 8 * kMiB);
}

TEST(CostModel, LevelPoliciesComeBackInRegistryOrder) {
  const auto costs = analyzeLevelPolicies(
      core::makeBaseline(core::ParallelGranularity::WithinBox), 32, 8, 4,
      CacheSpec::typical());
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_EQ(costs[0].policy, core::LevelPolicy::BoxSequential);
  EXPECT_EQ(costs[1].policy, core::LevelPolicy::BoxParallel);
  EXPECT_EQ(costs[2].policy, core::LevelPolicy::Hybrid);
  for (const auto& c : costs) {
    EXPECT_EQ(c.nBoxes, 8);
    EXPECT_GT(c.taskCount, 0);
    EXPECT_GE(c.depth, 1);
    EXPECT_GE(c.maxConcurrency, 1);
    EXPECT_GE(c.avgConcurrency, 1.0);
    EXPECT_GT(c.predictedSpeedup, 0.0);
  }
}

TEST(CostModel, LevelPolicySequentialMirrorsPerBoxBarriers) {
  const auto cfg = core::makeBaseline(core::ParallelGranularity::WithinBox);
  const CostReport box = analyzeCost(cfg, 32, 4, CacheSpec::typical());
  const auto costs =
      analyzeLevelPolicies(cfg, 32, 8, 4, CacheSpec::typical());
  EXPECT_EQ(costs[0].taskCount, 8);
  EXPECT_EQ(costs[0].depth, 8);
  EXPECT_EQ(costs[0].barrierCount, 8 * box.barrierCount);
  EXPECT_EQ(costs[0].maxConcurrency, box.maxConcurrency);
  EXPECT_EQ(costs[0].predictedSpeedup, 1.0)
      << "sequential is its own baseline";
}

TEST(CostModel, LevelPolicyParallelIsOneJoinOfNBoxTasks) {
  const auto costs = analyzeLevelPolicies(
      core::makeShiftFuse(core::ParallelGranularity::WithinBox), 32, 16, 4,
      CacheSpec::typical());
  EXPECT_EQ(costs[1].taskCount, 16);
  EXPECT_EQ(costs[1].depth, 1);
  EXPECT_EQ(costs[1].maxConcurrency, 16);
  EXPECT_EQ(costs[1].barrierCount, 1);
}

TEST(CostModel, LevelPolicyHybridCountsBoxTimesTileTasks) {
  // Overlapped 8^3 tiles over a 32^3 box: 4^3 tiles per box.
  const auto costs = analyzeLevelPolicies(
      core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 8,
                           core::ParallelGranularity::WithinBox),
      32, 8, 4, CacheSpec::typical());
  EXPECT_EQ(costs[2].taskCount, 8 * 64);
  EXPECT_EQ(costs[2].maxConcurrency, 8 * 64);
  EXPECT_EQ(costs[2].depth, 1) << "overlapped tiles are all independent";
}

TEST(CostModel, LevelPolicyHybridWavefrontPipelineDepth) {
  // Blocked wavefront, 8^3 tiles over 32^3: 4x4x4 tile grid, 10 fronts.
  // Component-outside runs kNumComp passes plus the velocity pre-stage.
  const auto clo = analyzeLevelPolicies(
      core::makeBlockedWF(8, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Outside),
      32, 4, 4, CacheSpec::typical());
  EXPECT_EQ(clo[2].depth, 10 * 5 + 1);
  EXPECT_EQ(clo[2].taskCount, 4 * (64 * 5 + 1));
  const auto cli = analyzeLevelPolicies(
      core::makeBlockedWF(8, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Inside),
      32, 4, 4, CacheSpec::typical());
  EXPECT_EQ(cli[2].depth, 10);
  EXPECT_EQ(cli[2].taskCount, 4 * 64);
  EXPECT_GT(cli[2].maxConcurrency, cli[1].nBoxes)
      << "hybrid exposes more than one unit per box at the widest front";
}

TEST(CostModel, LevelPolicyHybridFallsBackToBoxParallelForFusedFamilies) {
  for (const auto& cfg :
       {core::makeBaseline(core::ParallelGranularity::WithinBox),
        core::makeShiftFuse(core::ParallelGranularity::WithinBox)}) {
    const auto costs =
        analyzeLevelPolicies(cfg, 32, 8, 4, CacheSpec::typical());
    EXPECT_EQ(costs[2].taskCount, costs[1].taskCount) << cfg.name();
    EXPECT_EQ(costs[2].depth, costs[1].depth) << cfg.name();
    EXPECT_EQ(costs[2].maxConcurrency, costs[1].maxConcurrency)
        << cfg.name();
  }
}

TEST(CostModel, LevelPolicyParallelSpeedupCappedByThreads) {
  // 64 boxes on 8 threads: box-parallel usable concurrency is quantized
  // to exactly 8-wide rounds, so the predicted speedup never exceeds the
  // thread count (and a P>=Box-style config gains nothing sequentially).
  const auto costs = analyzeLevelPolicies(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 32, 64, 8,
      CacheSpec::typical());
  EXPECT_LE(costs[1].predictedSpeedup, 8.0 + 1e-12);
  EXPECT_GE(costs[1].predictedSpeedup, 1.0);
}

TEST(StepFusion, ComesBackInFuseModeOrderWithValidRanks) {
  const auto costs = analyzeStepFusion(/*rhsEvals=*/4, /*boxSize=*/32,
                                       /*nBoxes=*/8);
  ASSERT_EQ(costs.size(), 4u);
  EXPECT_EQ(costs[0].fuse, core::StepFuse::Eager);
  EXPECT_EQ(costs[1].fuse, core::StepFuse::Staged);
  EXPECT_EQ(costs[2].fuse, core::StepFuse::Fused);
  EXPECT_EQ(costs[3].fuse, core::StepFuse::CommAvoid);
  std::vector<int> ranks;
  for (const auto& c : costs) {
    ranks.push_back(c.rank);
    EXPECT_GT(c.costBytes, 0.0);
    EXPECT_GE(c.dispatches, 1);
  }
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<int>{1, 2, 3, 4}));
}

TEST(StepFusion, CommAvoidDeepensOneExchangeAndRecomputes) {
  const int evals = 4; // RK4
  const auto costs = analyzeStepFusion(evals, 32, 8);
  const auto& ca = costs[3];
  EXPECT_EQ(ca.exchanges, 1);
  EXPECT_EQ(ca.exchangeDepth, kernels::kNumGhost * evals);
  EXPECT_GT(ca.recomputeCells, 0.0);
  EXPECT_GT(ca.recomputeFraction, 0.0);
  EXPECT_EQ(ca.dispatches, 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(costs[i].exchanges, evals) << i;
    EXPECT_EQ(costs[i].exchangeDepth, kernels::kNumGhost) << i;
    EXPECT_EQ(costs[i].recomputeCells, 0.0) << i;
  }
  // Stage s recomputes a width g(R-1-s) shell: sum the closed form.
  double expectCells = 0;
  const double n = 32;
  for (int s = 0; s < evals; ++s) {
    const double w = kernels::kNumGhost * (evals - 1 - s);
    expectCells += ((n + 2 * w) * (n + 2 * w) * (n + 2 * w) - n * n * n) * 8;
  }
  EXPECT_DOUBLE_EQ(ca.recomputeCells, expectCells);
  // The deep halo moves more bytes than the per-stage halos combined —
  // the fixed per-exchange cost is what comm-avoiding actually saves.
  EXPECT_GT(ca.exchangeBytes, costs[2].exchangeBytes);
  EXPECT_LT(ca.alphaBytes, costs[2].alphaBytes);
}

TEST(StepFusion, DispatchCountsMirrorTheExecutors) {
  const auto costs = analyzeStepFusion(/*rhsEvals=*/3, 16, 4,
                                       /*eagerOps=*/13);
  EXPECT_EQ(costs[0].dispatches, 13); // caller-supplied sweep count
  EXPECT_EQ(costs[1].dispatches, 3);  // one graph per stage
  EXPECT_EQ(costs[2].dispatches, 1);  // whole step is one graph
  EXPECT_EQ(costs[3].dispatches, 1);
  const auto approx = analyzeStepFusion(3, 16, 4);
  EXPECT_EQ(approx[0].dispatches, 12); // 4 sweeps per stage default
}

TEST(StepFusion, InfeasibleDeepHaloFallsBackToFusedStructure) {
  // RK4 needs an 8-deep halo; a 4^3 box cannot host it — the analyzer
  // must price what the executor would actually run (the Fused fallback).
  const auto costs = analyzeStepFusion(/*rhsEvals=*/4, /*boxSize=*/4, 8);
  const auto& ca = costs[3];
  EXPECT_EQ(ca.exchanges, 4);
  EXPECT_EQ(ca.exchangeDepth, kernels::kNumGhost);
  EXPECT_EQ(ca.recomputeCells, 0.0);
  EXPECT_EQ(ca.exchangeBytes, costs[2].exchangeBytes);
  EXPECT_TRUE(ca.notes.empty());
}

TEST(StepFusion, BoxSizeDecidesTheCommAvoidingTrade) {
  // Small boxes are latency-bound: one deep exchange beats per-stage
  // exchanges and no note fires. Large boxes are volume-bound: the
  // recompute + extra halo outgrow the fixed savings and the
  // DeepHaloRecompute note names the condition.
  const auto small = analyzeStepFusion(/*rhsEvals=*/2, /*boxSize=*/16, 8);
  EXPECT_LT(small[3].costBytes, small[2].costBytes);
  EXPECT_TRUE(small[3].notes.empty());
  EXPECT_EQ(small[3].rank, 1);

  const auto big = analyzeStepFusion(/*rhsEvals=*/2, /*boxSize=*/128, 8);
  EXPECT_GT(big[3].costBytes, big[2].costBytes);
  ASSERT_EQ(big[3].notes.size(), 1u);
  const CostNote& note = big[3].notes.front();
  EXPECT_EQ(note.kind, CostNoteKind::DeepHaloRecompute);
  EXPECT_GT(note.actualBytes, note.limitBytes);
  const std::string msg = note.message();
  EXPECT_NE(msg.find("deep-halo-recompute"), std::string::npos) << msg;
  EXPECT_NE(msg.find("128^3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("comm-avoiding unprofitable"), std::string::npos)
      << msg;
}

TEST(StepFusion, NoteFiresExactlyWhenCommAvoidPricesWorseThanFused) {
  for (const int evals : {1, 2, 3, 4}) {
    for (const int n : {8, 16, 32, 64, 128}) {
      const auto costs = analyzeStepFusion(evals, n, 4);
      const bool feasible = kernels::kNumGhost * evals <= n;
      const bool worse = costs[3].costBytes > costs[2].costBytes;
      EXPECT_EQ(costs[3].notes.size() == 1u, feasible && worse)
          << "evals " << evals << " n " << n;
    }
  }
}

} // namespace
} // namespace fluxdiv::analysis
