// Tests of the task-graph race verifier (analysis/graphcheck). Three
// layers: hand-built miniature models exercise each diagnostic and
// over-synchronization reason in isolation; the real level-executor
// graphs (every policy family, both fab pitches, run() and runStep())
// must verify clean; and the seeded graph miscompilations of
// analysis/mutate must each be rejected with their predicted two-task
// witness. The adversarial-replay suite closes the loop on the dynamic
// side: every policy family stays bit-identical to the sequential
// evaluation under all four hostile orderings (with shadow-memory
// checking active when FLUXDIV_SHADOW_CHECK is compiled in).

#include "analysis/graphcheck.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/mutate.hpp"
#include "analysis/verifier.hpp"
#include "core/exec_level.hpp"
#include "core/variant.hpp"
#include "grid/box.hpp"
#include "grid/leveldata.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::analysis {
namespace {

using core::LevelPolicy;
using core::VariantConfig;
using grid::Box;
using grid::DisjointBoxLayout;
using grid::IntVect;
using grid::LevelData;
using grid::Pitch;
using grid::ProblemDomain;

// ---------------------------------------------------------------------------
// Hand-built miniature models.
// ---------------------------------------------------------------------------

TaskAccess acc(FieldId field, std::size_t box, const Box& region,
               int comp0 = 0, int nComp = 1) {
  return {field, box, /*slot=*/0, comp0, nComp, region};
}

/// True if some diagnostic of `kind` names the (labelA, labelB) pair in
/// either order.
bool reported(const GraphCheckReport& rep, DiagnosticKind kind,
              const std::string& labelA, const std::string& labelB) {
  for (const Diagnostic& d : rep.diagnostics) {
    if (d.kind != kind) {
      continue;
    }
    if ((d.stageA == labelA && d.stageB == labelB) ||
        (d.stageA == labelB && d.stageB == labelA)) {
      return true;
    }
  }
  return false;
}

TEST(GraphCheck, EmptyAndSingleTaskModelsAreClean) {
  TaskGraphModel m;
  m.name = "empty";
  EXPECT_TRUE(checkTaskGraph(m).ok());
  const int t = m.addTask("lonely");
  m.tasks[static_cast<std::size_t>(t)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4)));
  const GraphCheckReport rep = checkTaskGraph(m);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.taskCount, 1);
  EXPECT_EQ(rep.criticalPath, 1);
}

TEST(GraphCheck, UnorderedOverlappingWritesAreReported) {
  TaskGraphModel m;
  m.name = "w/w";
  const int a = m.addTask("tile A");
  const int b = m.addTask("tile B");
  m.tasks[static_cast<std::size_t>(a)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4)));
  m.tasks[static_cast<std::size_t>(b)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4, IntVect(3, 0, 0))));
  const GraphCheckReport rep = checkTaskGraph(m);
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(reported(rep, DiagnosticKind::WriteOverlap, "tile A",
                       "tile B"));
}

TEST(GraphCheck, DisjointComponentsAndBoxesDoNotConflict) {
  TaskGraphModel m;
  m.name = "disjoint";
  const int a = m.addTask("box 0");
  const int b = m.addTask("box 1");   // other fab: same region, no overlap
  const int c = m.addTask("box 0 far"); // same fab, disjoint region
  m.tasks[static_cast<std::size_t>(a)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4)));
  m.tasks[static_cast<std::size_t>(b)].writes.push_back(
      acc(FieldId::Phi1, 1, Box::cube(4)));
  m.tasks[static_cast<std::size_t>(c)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4, IntVect(8, 8, 8))));
  EXPECT_TRUE(checkTaskGraph(m).ok());
}

TEST(GraphCheck, DisjointComponentRangesDoNotConflict) {
  TaskGraphModel m;
  m.name = "comps";
  const int a = m.addTask("c0");
  const int b = m.addTask("c1");
  m.tasks[static_cast<std::size_t>(a)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4), 0, 1));
  m.tasks[static_cast<std::size_t>(b)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4), 1, 2));
  EXPECT_TRUE(checkTaskGraph(m).ok());
}

TEST(GraphCheck, UnorderedReadWriteIsReportedAndEdgeSilencesIt) {
  for (const bool ordered : {false, true}) {
    TaskGraphModel m;
    m.name = ordered ? "r/w ordered" : "r/w race";
    const int w = m.addTask("writer");
    const int r = m.addTask("reader");
    m.tasks[static_cast<std::size_t>(w)].writes.push_back(
        acc(FieldId::Phi0, 0, Box::cube(4)));
    m.tasks[static_cast<std::size_t>(r)].reads.push_back(
        acc(FieldId::Phi0, 0, Box::cube(6)));
    if (ordered) {
      m.addEdge(w, r);
    }
    const GraphCheckReport rep = checkTaskGraph(m);
    if (ordered) {
      EXPECT_TRUE(rep.ok());
    } else {
      ASSERT_FALSE(rep.ok());
      EXPECT_TRUE(reported(rep, DiagnosticKind::ReadWriteRace, "writer",
                           "reader"));
    }
  }
}

TEST(GraphCheck, TransitiveOrderingCountsAsHappensBefore) {
  TaskGraphModel m;
  m.name = "transitive";
  const int a = m.addTask("a");
  const int mid = m.addTask("mid");
  const int b = m.addTask("b");
  m.tasks[static_cast<std::size_t>(a)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4)));
  m.tasks[static_cast<std::size_t>(b)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4)));
  m.addEdge(a, mid);
  m.addEdge(mid, b);
  EXPECT_TRUE(checkTaskGraph(m).ok());
}

TEST(GraphCheck, CycleIsReportedAsDiagnosticNotHang) {
  TaskGraphModel m;
  m.name = "cycle";
  const int a = m.addTask("ouroboros head");
  const int b = m.addTask("ouroboros tail");
  m.addEdge(a, b);
  m.addEdge(b, a);
  const GraphCheckReport rep = checkTaskGraph(m);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.diagnostics[0].kind, DiagnosticKind::DependencyCycle);
  EXPECT_TRUE(reported(rep, DiagnosticKind::DependencyCycle,
                       "ouroboros head", "ouroboros tail"));
}

TEST(GraphCheck, GhostReadMustBeCoveredByPrecedingExchangeWrites) {
  const Box valid = Box::cube(8);
  const Box grown = valid.grow(1);
  for (const bool shrunk : {false, true}) {
    TaskGraphModel m;
    m.name = shrunk ? "g3 shrunk" : "g3 covered";
    m.ghostsPreExchanged = false;
    m.validBoxes = {valid};
    const int op = m.addTask("exchange op 0");
    const int r = m.addTask("box 0");
    m.tasks[static_cast<std::size_t>(op)].exchangeOp = true;
    // One op filling the whole ghost ring (modeled as the grown box; the
    // valid interior is its own, untouched, storage in this toy model);
    // the shrunk variant under-fills the high-z layer.
    const Box fill =
        shrunk ? Box(grown.lo(), grown.hi() - IntVect::basis(2)) : grown;
    m.tasks[static_cast<std::size_t>(op)].writes.push_back(
        acc(FieldId::Phi0, 0, fill));
    m.tasks[static_cast<std::size_t>(r)].reads.push_back(
        acc(FieldId::Phi0, 0, grown));
    m.tasks[static_cast<std::size_t>(r)].writes.push_back(
        acc(FieldId::Phi1, 0, valid));
    m.addEdge(op, r);
    const GraphCheckReport rep = checkTaskGraph(m);
    if (shrunk) {
      ASSERT_FALSE(rep.ok());
      EXPECT_TRUE(reported(rep, DiagnosticKind::ReadUncovered, "box 0",
                           "exchange op 0"));
    } else {
      EXPECT_TRUE(rep.ok());
    }
  }
}

TEST(GraphCheck, OverSynchronizationReasonsAreClassified) {
  TaskGraphModel m;
  m.name = "oversync";
  const int a = m.addTask("a");
  const int mid = m.addTask("mid");
  const int b = m.addTask("b");
  m.tasks[static_cast<std::size_t>(a)].writes.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4)));
  m.tasks[static_cast<std::size_t>(b)].reads.push_back(
      acc(FieldId::Phi1, 0, Box::cube(4)));
  m.addEdge(a, b);
  m.addEdge(a, b);   // duplicate of the conflict-carrying edge
  m.addEdge(a, mid); // orders nothing: mid touches no memory
  m.addEdge(mid, b);
  const GraphCheckReport rep = checkTaskGraph(m, /*findRemovable=*/true);
  EXPECT_TRUE(rep.ok());
  bool sawDuplicate = false;
  bool sawImplied = false;
  bool sawNoConflict = false;
  for (const RemovableEdge& e : rep.removable) {
    if (e.reason.find("duplicate") != std::string::npos) {
      sawDuplicate = true;
    }
    if (e.reason.find("transitively implied") != std::string::npos) {
      sawImplied = true;
    }
    if (e.reason.find("no conflicting") != std::string::npos) {
      sawNoConflict = true;
    }
  }
  EXPECT_TRUE(sawDuplicate);
  // a -> b is both duplicated and shadowed by a -> mid -> b; one instance
  // reports as duplicate, the other as implied by the alternate path.
  EXPECT_TRUE(sawImplied);
  // a -> mid (and mid -> b) order no conflicting accesses themselves; with
  // the direct a -> b edges present they are removable outright.
  EXPECT_TRUE(sawNoConflict);
}

// ---------------------------------------------------------------------------
// Real executor graphs.
// ---------------------------------------------------------------------------

/// The four schedule families at one representative configuration each
/// (WithinBox granularity so hybrid builds real intra-box tile tasks).
std::vector<VariantConfig> representativeFamilies() {
  return {
      core::makeBaseline(core::ParallelGranularity::WithinBox),
      core::makeShiftFuse(core::ParallelGranularity::WithinBox),
      core::makeBlockedWF(8, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Outside),
      core::makeBlockedWF(8, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Inside),
      core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 8,
                           core::ParallelGranularity::WithinBox),
  };
}

/// 8-box level (2x2x2 boxes of side 16), ghosts exchanged.
LevelData makeExchangedLevel(Pitch pitch) {
  const ProblemDomain dom(Box::cube(32));
  const DisjointBoxLayout dbl(dom, 16);
  LevelData phi0(dbl, kernels::kNumComp, kernels::kNumGhost, pitch);
  kernels::initializeExemplar(phi0);
  return phi0;
}

TaskGraphModel lowerModel(const VariantConfig& cfg, LevelPolicy policy,
                          Pitch pitch, bool withExchange) {
  LevelData phi0 = makeExchangedLevel(pitch);
  LevelData phi1(phi0.layout(), kernels::kNumComp, 0, pitch);
  core::LevelExecOptions opts;
  opts.policy = policy;
  core::LevelExecutor exec(cfg, 3, opts);
  return exec.lowerGraph(phi0, phi1, withExchange);
}

TEST(GraphCheck, AllPolicyFamiliesAndPitchesVerifyClean) {
  for (const Pitch pitch : {Pitch::Padded, Pitch::Dense}) {
    for (const VariantConfig& cfg : representativeFamilies()) {
      for (const LevelPolicy policy :
           {LevelPolicy::BoxParallel, LevelPolicy::Hybrid}) {
        for (const bool withExchange : {false, true}) {
          const TaskGraphModel m =
              lowerModel(cfg, policy, pitch, withExchange);
          const GraphCheckReport rep = checkTaskGraph(m);
          EXPECT_TRUE(rep.ok()) << m.name << ": first diagnostic: "
                                << (rep.diagnostics.empty()
                                        ? std::string("-")
                                        : rep.diagnostics[0].message());
          EXPECT_GE(rep.taskCount, 8) << m.name;
          if (withExchange) {
            EXPECT_GT(rep.edgeCount, 0)
                << m.name << ": runStep must order fringes after ops";
          }
        }
      }
    }
  }
}

TEST(GraphCheck, SequentialPolicyHasNoGraphToLower) {
  LevelData phi0 = makeExchangedLevel(Pitch::Padded);
  LevelData phi1(phi0.layout(), kernels::kNumComp, 0);
  core::LevelExecutor exec(representativeFamilies()[0], 2);
  EXPECT_THROW(exec.lowerGraph(phi0, phi1, false), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Seeded mutations: the checker must reject each with its predicted
// witness.
// ---------------------------------------------------------------------------

void expectMutationCaught(const TaskGraphModel& original,
                          const mutate::GraphMutation& mut,
                          std::uint64_t seed) {
  if (mut.expect == DiagnosticKind::Ok) {
    return; // this graph offers no candidate for the class
  }
  const GraphCheckReport rep = checkTaskGraph(mut.model);
  ASSERT_FALSE(rep.ok())
      << original.name << " seed " << seed << ": " << mut.what
      << " was accepted";
  EXPECT_TRUE(reported(rep, mut.expect, original.label(mut.taskA),
                       original.label(mut.taskB)))
      << original.name << " seed " << seed << ": " << mut.what
      << "\n  expected " << diagnosticKindName(mut.expect) << " naming '"
      << original.label(mut.taskA) << "' vs '"
      << original.label(mut.taskB) << "', first diagnostic: "
      << rep.diagnostics[0].message();
}

TEST(GraphCheckMutation, SeededMutationsProduceTheExpectedDiagnostic) {
  // runStep graphs of a box-parallel family and a tiled hybrid family:
  // both have conflict-carrying edges to drop/reroute and exchange-op
  // writes to shrink.
  const TaskGraphModel models[] = {
      lowerModel(representativeFamilies()[1], LevelPolicy::BoxParallel,
                 Pitch::Padded, /*withExchange=*/true),
      lowerModel(representativeFamilies()[4], LevelPolicy::Hybrid,
                 Pitch::Padded, /*withExchange=*/true),
  };
  for (const TaskGraphModel& m : models) {
    int executed = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const mutate::GraphMutation muts[] = {
          mutate::dropGraphEdge(m, seed),
          mutate::rerouteGraphEdge(m, seed),
          mutate::shrinkGhostWrite(m, seed),
      };
      for (const mutate::GraphMutation& mut : muts) {
        expectMutationCaught(m, mut, seed);
        executed += mut.expect != DiagnosticKind::Ok ? 1 : 0;
      }
    }
    EXPECT_GE(executed, 5)
        << m.name << ": a runStep graph must offer candidates for "
        << "every mutation class";
  }
}

TEST(GraphCheckMutation, MutationsAreDeterministicPerSeed) {
  const TaskGraphModel m =
      lowerModel(representativeFamilies()[0], LevelPolicy::BoxParallel,
                 Pitch::Padded, /*withExchange=*/true);
  const mutate::GraphMutation a = mutate::dropGraphEdge(m, 3);
  const mutate::GraphMutation b = mutate::dropGraphEdge(m, 3);
  EXPECT_EQ(a.what, b.what);
  EXPECT_EQ(a.taskA, b.taskA);
  EXPECT_EQ(a.taskB, b.taskB);
  EXPECT_EQ(a.expect, b.expect);
}

// ---------------------------------------------------------------------------
// Adversarial replay: hostile orderings stay bit-identical (and, when
// FLUXDIV_SHADOW_CHECK is compiled in, shadow-race-free).
// ---------------------------------------------------------------------------

TEST(GraphCheckReplay, HostileOrderingsAreBitIdenticalToSequential) {
  const LevelData phi0 = makeExchangedLevel(Pitch::Padded);
  for (const VariantConfig& cfg : representativeFamilies()) {
    LevelData expected(phi0.layout(), kernels::kNumComp, 0);
    {
      core::LevelExecOptions opts;
      opts.policy = LevelPolicy::BoxSequential;
      core::LevelExecutor exec(cfg, 3, opts);
      exec.run(phi0, expected);
    }
    for (const LevelPolicy policy :
         {LevelPolicy::BoxParallel, LevelPolicy::Hybrid}) {
      for (const core::ReplayOrder order : core::kReplayOrders) {
        core::LevelExecOptions opts;
        opts.policy = policy;
        opts.replay = {order, /*seed=*/42};
        core::LevelExecutor exec(cfg, 3, opts);
        LevelData actual(phi0.layout(), kernels::kNumComp, 0);
        exec.run(phi0, actual);
        EXPECT_EQ(LevelData::maxAbsDiffValid(expected, actual), 0.0)
            << cfg.name() << " / " << core::levelPolicyName(policy)
            << " / " << core::replayOrderName(order);
      }
    }
  }
}

TEST(GraphCheckReplay, RunStepReplayExchangesAndMatches) {
  const ProblemDomain dom(Box::cube(32));
  const DisjointBoxLayout dbl(dom, 16);
  const VariantConfig cfg = representativeFamilies()[1];
  // Reference: barrier exchange + sequential evaluation.
  LevelData ref0(dbl, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(ref0);
  LevelData expected(dbl, kernels::kNumComp, 0);
  {
    core::LevelExecOptions opts;
    opts.policy = LevelPolicy::BoxSequential;
    core::LevelExecutor exec(cfg, 3, opts);
    exec.run(ref0, expected);
  }
  for (const core::ReplayOrder order : core::kReplayOrders) {
    LevelData phi0(dbl, kernels::kNumComp, kernels::kNumGhost);
    kernels::initializeExemplar(phi0);
    core::LevelExecOptions opts;
    opts.policy = LevelPolicy::BoxParallel;
    opts.replay = {order, /*seed=*/42};
    core::LevelExecutor exec(cfg, 3, opts);
    LevelData actual(dbl, kernels::kNumComp, 0);
    exec.runStep(phi0, actual);
    EXPECT_EQ(LevelData::maxAbsDiffValid(expected, actual), 0.0)
        << core::replayOrderName(order);
  }
}

} // namespace
} // namespace fluxdiv::analysis
