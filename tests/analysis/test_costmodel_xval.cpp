// Cross-validation of the static traffic model against the memmodel cache
// simulator: the same schedules, priced analytically and traced through
// CacheSim, must agree within the factor-2 tolerance stated in
// docs/cost-model.md — across box sizes on both sides of the capacity
// cliff and across the four paper schedule families.
//
// Blocked WF with the component loop *outside* is deliberately not in the
// sweep: memmodel's trace for that family localizes the velocity field per
// tile and swaps the component/tile loop order relative to the executor
// (see trace.cpp), so the oracle itself prices a different schedule there.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/costmodel.hpp"
#include "core/variant.hpp"
#include "memmodel/trace.hpp"

namespace fluxdiv::analysis {
namespace {

constexpr std::size_t kKiB = 1024;
constexpr double kTolerance = 2.0; // stated in docs/cost-model.md

CacheSpec specWithLlc(std::size_t llc) {
  CacheSpec s;
  s.l2Bytes = 256 * kKiB;
  s.llcBytes = llc;
  return s;
}

double simDramBytes(const core::VariantConfig& cfg, int n, std::size_t llc) {
  memmodel::CacheSim sim =
      memmodel::CacheSim::makeTypical(32 * kKiB, 256 * kKiB, llc);
  memmodel::traceBoxEvaluation(sim, cfg, n);
  return static_cast<double>(sim.dramBytes());
}

std::vector<core::VariantConfig> sweepVariants() {
  using core::ComponentLoop;
  using core::ParallelGranularity;
  return {
      core::makeBaseline(ParallelGranularity::OverBoxes),
      core::makeBaseline(ParallelGranularity::OverBoxes,
                         ComponentLoop::Inside),
      core::makeShiftFuse(ParallelGranularity::OverBoxes),
      core::makeShiftFuse(ParallelGranularity::OverBoxes,
                          ComponentLoop::Inside),
      core::makeBlockedWF(8, ParallelGranularity::OverBoxes,
                          ComponentLoop::Inside),
      core::makeOverlapped(core::IntraTileSchedule::Basic, 8,
                           ParallelGranularity::OverBoxes),
      core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 8,
                           ParallelGranularity::OverBoxes),
  };
}

TEST(CostModelXval, StaticTrafficWithinToleranceOfSimulator) {
  // Both capacity regimes: a 512 KiB LLC that every 32^3 schedule spills
  // (and 16^3 schedules straddle), and a 6 MiB LLC that 32^3 fits.
  for (const int n : {16, 32}) {
    for (const std::size_t llc : {512 * kKiB, 6144 * kKiB}) {
      for (const auto& cfg : sweepVariants()) {
        const double model =
            analyzeCost(cfg, n, 1, specWithLlc(llc)).trafficBytes;
        const double sim = simDramBytes(cfg, n, llc);
        ASSERT_GT(sim, 0);
        const double ratio = model / sim;
        EXPECT_GE(ratio, 1.0 / kTolerance)
            << cfg.name() << " n=" << n << " llc=" << llc;
        EXPECT_LE(ratio, kTolerance)
            << cfg.name() << " n=" << n << " llc=" << llc;
      }
    }
  }
}

TEST(CostModelXval, PaddedSpecKeepsTrafficWithinTolerance) {
  // The padded-pitch spec (advisor --pad) reprices working sets only;
  // its traffic prediction must still land within the stated factor-2 of
  // the (dense-trace) simulator.
  for (const std::size_t llc : {512 * kKiB, 6144 * kKiB}) {
    for (const auto& cfg : sweepVariants()) {
      CacheSpec s = specWithLlc(llc);
      s.xPadDoubles = 8;
      const double model = analyzeCost(cfg, 32, 1, s).trafficBytes;
      const double sim = simDramBytes(cfg, 32, llc);
      ASSERT_GT(sim, 0);
      const double ratio = model / sim;
      EXPECT_GE(ratio, 1.0 / kTolerance) << cfg.name() << " llc=" << llc;
      EXPECT_LE(ratio, kTolerance) << cfg.name() << " llc=" << llc;
    }
  }
}

TEST(CostModelXval, ModelOrderMatchesSimulatorOnSeparatedPairs) {
  // Ranking agreement: wherever the simulator separates two schedules
  // clearly (beyond the tolerance band), the static model must order
  // them the same way. 32^3 over a 512 KiB LLC is the regime where the
  // families actually separate.
  const int n = 32;
  const std::size_t llc = 512 * kKiB;
  const auto variants = sweepVariants();
  std::vector<double> model(variants.size());
  std::vector<double> sim(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    model[i] = analyzeCost(variants[i], n, 1, specWithLlc(llc)).trafficBytes;
    sim[i] = simDramBytes(variants[i], n, llc);
  }
  int separatedPairs = 0;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    for (std::size_t j = 0; j < variants.size(); ++j) {
      if (sim[i] > 2.0 * sim[j]) {
        ++separatedPairs;
        EXPECT_GT(model[i], model[j])
            << variants[i].name() << " vs " << variants[j].name();
      }
    }
  }
  // The sweep must actually exercise the check (baseline vs the fused and
  // tiled families separates by far more than 2x here).
  EXPECT_GE(separatedPairs, 5);
}

TEST(CostModelXval, CapacityCliffVisibleInBothModels) {
  // The paper's central working-set argument: the same baseline schedule
  // is near-compulsory when the box fits the LLC and several times that
  // when it does not. Both the analytic model and the simulator must show
  // the cliff.
  const auto cfg = core::makeBaseline(core::ParallelGranularity::OverBoxes);
  const double modelSmallCache =
      analyzeCost(cfg, 32, 1, specWithLlc(512 * kKiB)).trafficBytes;
  const double modelBigCache =
      analyzeCost(cfg, 32, 1, specWithLlc(6144 * kKiB)).trafficBytes;
  const double simSmallCache = simDramBytes(cfg, 32, 512 * kKiB);
  const double simBigCache = simDramBytes(cfg, 32, 6144 * kKiB);
  EXPECT_GT(modelSmallCache, 3.0 * modelBigCache);
  EXPECT_GT(simSmallCache, 3.0 * simBigCache);
}

} // namespace
} // namespace fluxdiv::analysis
