// Property suite: the stepcheck abstraction cross-validated against a
// concrete per-cell oracle. The checker reasons per *layer* (L-inf ghost
// depth / interior distance); the oracle here executes the same recorded
// StepProgram cell by cell on a 1-D periodic box with real doubles, a
// deliberately asymmetric g-wide stencil, and explicit
// definedness-tracking — sharing no code with the checker. Like the
// checker, the oracle runs the planned program and the eager reference in
// lockstep and compares every slot's interior after every op: stepcheck
// proves *per-op* equivalence, which is strictly stronger than
// final-state equivalence (a reordered exchange/axpy pair under a deep
// comm-avoiding halo can converge again by the last op, and the checker
// still — correctly — rejects it). The bridge properties, over every
// scheme x step count x fuse mode and the seeded mutations:
//
//   checker Ok             => lockstep runs bit-equal after every op
//   predicts ValueMismatch => the runs concretely diverge at some op
//                             (and the mutant reads nothing undefined)
//   predicts ReadBeforeWrite => the mutant concretely reads an undefined
//                             cell, at the predicted op
//   OverDeepHalo advisory  => still bit-equal after every op (deepening
//                             is semantically free, just priced)

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/mutate.hpp"
#include "analysis/stepcheck.hpp"
#include "core/stepprogram.hpp"
#include "kernels/footprint.hpp"
#include "solvers/integrator.hpp"

namespace fluxdiv::analysis {
namespace {

using core::StepFuse;
using core::StepHaloPlan;
using core::StepOp;
using core::StepOpKind;
using core::StepProgram;
using mutate::StepMutation;
using solvers::Scheme;

constexpr int kGhost = kernels::kNumGhost;
constexpr int kCells = 17; ///< interior cells; odd, larger than any halo

constexpr StepFuse kCheckedFuses[] = {StepFuse::Staged, StepFuse::Fused,
                                      StepFuse::CommAvoid};

/// Deterministic, asymmetric stencil weights for the oracle's RHS — any
/// fixed weights work; asymmetry catches mirrored-exchange mistakes.
double stencilWeight(int d) {
  return 0.17 * d + 0.29 / (1.0 + static_cast<double>(d) * d);
}

/// Deterministic per-cell values: interior state and the *stale* garbage
/// the ghost cells hold before any exchange (both runs start identical).
double interiorValue(int i) { return 0.3 + 0.07 * i + 0.001 * i * i; }
double staleValue(int i) { return 900.0 + 1.3 * i; }

/// One concrete slot field over [-depth, kCells + depth) with per-cell
/// definedness.
struct Field {
  std::vector<double> val;
  std::vector<char> def;
};

struct OracleState {
  std::vector<Field> slots;
  int depth = 0;
  bool undefinedRead = false;
  int undefinedAtOp = -1;
};

/// Storage a run needs: every op's write band plus the stencil reach of
/// the deepest RHS evaluation.
int storageDepth(const StepProgram& prog, const std::vector<int>& width) {
  int d = kGhost;
  for (std::size_t i = 0; i < prog.ops.size(); ++i) {
    const int w = width[i];
    if (w < 0) {
      continue;
    }
    const int reach =
        prog.ops[i].kind == StepOpKind::RhsEval ? w + kGhost : w;
    d = std::max(d, reach);
  }
  return d;
}

OracleState initState(const StepProgram& prog, int depth) {
  OracleState st;
  st.depth = depth;
  const int total = kCells + 2 * depth;
  st.slots.resize(static_cast<std::size_t>(prog.nSlots));
  for (int s = 0; s < prog.nSlots; ++s) {
    Field& f = st.slots[static_cast<std::size_t>(s)];
    f.val.assign(static_cast<std::size_t>(total), 0.0);
    f.def.assign(static_cast<std::size_t>(total), 0);
  }
  Field& u = st.slots[0];
  for (int i = -depth; i < kCells + depth; ++i) {
    const std::size_t k = static_cast<std::size_t>(i + depth);
    u.val[k] = (i >= 0 && i < kCells) ? interiorValue(i) : staleValue(i);
    u.def[k] = 1;
  }
  return st;
}

/// Execute op `opIdx` of `prog` cell by cell at ghost width `w` (< 0
/// skips the op — a dropped exchange).
void applyOp(OracleState& st, const StepProgram& prog, std::size_t opIdx,
             int w) {
  if (w < 0 || st.undefinedRead) {
    return; // like the checker, stop at the first bad read
  }
  const StepOp& op = prog.ops[opIdx];
  const int D = st.depth;
  const auto at = [D](int i) { return static_cast<std::size_t>(i + D); };
  Field& dst = st.slots[static_cast<std::size_t>(op.dst)];
  Field& src = st.slots[static_cast<std::size_t>(op.src)];
  const auto read = [&st, opIdx, at](const Field& f, int i) -> double {
    if (!f.def[at(i)] && !st.undefinedRead) {
      st.undefinedRead = true;
      st.undefinedAtOp = static_cast<int>(opIdx);
    }
    return f.val[at(i)];
  };
  switch (op.kind) {
  case StepOpKind::Exchange:
    // Periodic: ghost layer L holds the neighbor's valid cell, which on
    // one box is the interior cell L-1 in from the opposite side.
    for (int L = 1; L <= w; ++L) {
      dst.val[at(-L)] = read(dst, kCells - L);
      dst.def[at(-L)] = 1;
      dst.val[at(kCells - 1 + L)] = read(dst, L - 1);
      dst.def[at(kCells - 1 + L)] = 1;
    }
    break;
  case StepOpKind::BoundaryFill:
    FAIL() << "oracle programs are periodic; no BoundaryFill";
    break;
  case StepOpKind::RhsEval: {
    std::vector<double> out(static_cast<std::size_t>(kCells + 2 * w));
    for (int i = -w; i < kCells + w; ++i) {
      double acc = 0.0;
      for (int d = -kGhost; d <= kGhost; ++d) {
        acc += stencilWeight(d) * read(src, i + d);
      }
      out[static_cast<std::size_t>(i + w)] = acc;
    }
    for (int i = -w; i < kCells + w; ++i) {
      dst.val[at(i)] = out[static_cast<std::size_t>(i + w)];
      dst.def[at(i)] = 1;
    }
    break;
  }
  case StepOpKind::CopySlot:
    for (int i = -w; i < kCells + w; ++i) {
      dst.val[at(i)] = read(src, i);
      dst.def[at(i)] = 1; // overwrites: old dst is not consumed
    }
    break;
  case StepOpKind::AxpySlot:
    for (int i = -w; i < kCells + w; ++i) {
      dst.val[at(i)] = read(dst, i) + op.scale * read(src, i);
    }
    break;
  case StepOpKind::ScaleSlot:
    for (int i = -w; i < kCells + w; ++i) {
      dst.val[at(i)] = op.scale * read(dst, i);
    }
    break;
  }
}

/// Bitwise comparison of every slot's interior cells defined in both
/// states (the planned run may define more ghost layers; a mutated run
/// may define slots in a different order).
bool interiorsEqual(const OracleState& a, const OracleState& b) {
  for (std::size_t s = 0; s < a.slots.size(); ++s) {
    for (int i = 0; i < kCells; ++i) {
      const std::size_t ka = static_cast<std::size_t>(i + a.depth);
      const std::size_t kb = static_cast<std::size_t>(i + b.depth);
      if (a.slots[s].def[ka] && b.slots[s].def[kb] &&
          a.slots[s].val[ka] != b.slots[s].val[kb]) {
        return false;
      }
    }
  }
  return true;
}

std::vector<int> eagerWidths(const StepProgram& prog) {
  return core::planStepHalos(prog, StepFuse::Staged).width;
}

/// Run the mutant and the eager reference in lockstep — the concrete
/// mirror of the checker's per-op comparison.
struct OracleVerdict {
  int firstDivergeOp = -1; ///< first op after which interiors differ
  bool undefinedRead = false;
  int undefinedAtOp = -1;
  [[nodiscard]] bool diverged() const { return firstDivergeOp >= 0; }
};

OracleVerdict runLockstep(const StepProgram& prog,
                          const std::vector<int>& width,
                          const StepProgram& ref) {
  const std::vector<int> refWidth = eagerWidths(ref);
  OracleState run = initState(prog, storageDepth(prog, width));
  OracleState eager = initState(ref, storageDepth(ref, refWidth));
  OracleVerdict v;
  for (std::size_t i = 0; i < prog.ops.size(); ++i) {
    applyOp(run, prog, i, width[i]);
    if (run.undefinedRead) {
      v.undefinedRead = true;
      v.undefinedAtOp = run.undefinedAtOp;
      return v;
    }
    applyOp(eager, ref, i, refWidth[i]);
    if (!interiorsEqual(run, eager)) {
      v.firstDivergeOp = static_cast<int>(i);
      return v;
    }
  }
  return v;
}

std::string tag(Scheme scheme, int steps, StepFuse fuse) {
  return std::string(solvers::schemeName(scheme)) + " x" +
         std::to_string(steps) + " / " + core::stepFuseName(fuse);
}

TEST(StepCheckProps, CheckerOkImpliesConcreteLockstepEquality) {
  for (const Scheme scheme : solvers::kSchemes) {
    for (const int steps : {1, 2, 3}) {
      const StepProgram prog =
          solvers::buildStepProgram(scheme, /*dt=*/1e-3, steps);
      for (const StepFuse fuse : kCheckedFuses) {
        const StepHaloPlan plan = core::planStepHalos(prog, fuse);
        ASSERT_TRUE(checkStepProgram(prog, fuse, plan).ok())
            << tag(scheme, steps, fuse);
        const OracleVerdict v = runLockstep(prog, plan.width, prog);
        EXPECT_FALSE(v.undefinedRead) << tag(scheme, steps, fuse);
        EXPECT_FALSE(v.diverged())
            << tag(scheme, steps, fuse) << ": checker passed a plan the "
            << "concrete oracle refutes at op " << v.firstDivergeOp;
      }
    }
  }
}

TEST(StepCheckProps, PredictedFailuresAreConcretelyReal) {
  // dt = 1 keeps every combine contribution the same magnitude as its
  // accumulator, so the skew mutation's 1e-12 coefficient perturbation
  // stays above one ulp of the running sum. (With a tiny dt the
  // perturbed addend can round into the identical double — the checker's
  // provenance mismatch guarantees a representable divergence only when
  // the magnitudes cooperate.)
  for (const Scheme scheme : solvers::kSchemes) {
    for (const int steps : {1, 3}) {
      const StepProgram prog =
          solvers::buildStepProgram(scheme, /*dt=*/1.0, steps);
      for (const StepFuse fuse : kCheckedFuses) {
        for (std::uint64_t seed = 0; seed < 5; ++seed) {
          const StepMutation muts[] = {
              mutate::dropStepExchange(prog, fuse, seed),
              mutate::shallowStepHalo(prog, fuse, seed),
              mutate::reorderStepOps(prog, fuse, seed),
              mutate::skewStepCoeff(prog, fuse, seed),
          };
          for (const StepMutation& m : muts) {
            if (!m.valid) {
              continue;
            }
            const std::string where =
                tag(scheme, steps, fuse) + ", seed " +
                std::to_string(seed) + ": " + m.what;
            const StepProgram& ref =
                m.useReference ? m.reference : m.prog;
            const OracleVerdict v =
                runLockstep(m.prog, m.plan.width, ref);
            if (m.expect == StepDiagKind::ReadBeforeWrite) {
              EXPECT_TRUE(v.undefinedRead)
                  << where << ": checker predicts a read of "
                             "never-written cells; the oracle read none";
              EXPECT_EQ(v.undefinedAtOp, m.witnessOp) << where;
            } else {
              EXPECT_FALSE(v.undefinedRead) << where;
              EXPECT_TRUE(v.diverged())
                  << where << ": checker predicts a value divergence "
                             "the oracle cannot reproduce";
            }
          }
        }
      }
    }
  }
}

TEST(StepCheckProps, OverDeepHalosAreConcretelyHarmless) {
  for (const Scheme scheme : solvers::kSchemes) {
    const StepProgram prog = solvers::buildStepProgram(scheme, 1e-3);
    for (const StepFuse fuse : kCheckedFuses) {
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        const StepMutation m = mutate::deepenStepHalo(prog, fuse, seed);
        if (!m.valid) {
          continue;
        }
        const OracleVerdict v = runLockstep(m.prog, m.plan.width, m.prog);
        EXPECT_FALSE(v.undefinedRead) << m.what;
        EXPECT_FALSE(v.diverged())
            << tag(scheme, 1, fuse) << ": " << m.what
            << ": a deepened halo must not change the answer";
      }
    }
  }
}

} // namespace
} // namespace fluxdiv::analysis
