// Every variant the registry can produce must lower to a model the
// verifier proves legal — over multiple box sizes and worker counts,
// including a count that does not divide the box extent (ragged slabs).

#include <gtest/gtest.h>

#include "analysis/lower.hpp"
#include "analysis/verifier.hpp"
#include "core/variant.hpp"

namespace fluxdiv::analysis {
namespace {

using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::ScheduleFamily;
using core::VariantConfig;

void expectLegal(const VariantConfig& cfg, int boxSize, int nThreads) {
  const Diagnostic diag =
      ScheduleVerifier{}.verify(cfg, boxSize, nThreads);
  EXPECT_TRUE(diag.ok()) << diag.message();
}

TEST(VerifierLegal, FullRegistrySweep) {
  int checked = 0;
  for (const int boxSize : {16, 32}) {
    for (const auto& cfg :
         core::enumerateVariants(boxSize, /*includeExtensions=*/true)) {
      for (const int nThreads : {1, 4, 7}) {
        expectLegal(cfg, boxSize, nThreads);
        ++checked;
      }
    }
  }
  // Guard against the registry silently shrinking: the paper grid is 4
  // families x CLO/CLI x granularities, plus tile-size/aspect extensions.
  EXPECT_GE(checked, 100);
}

// Each ScheduleFamily x ParallelGranularity pair spelled out, so a failure
// names the exact combination rather than an index into the sweep.

TEST(VerifierLegal, BaselineAllGranularities) {
  for (const auto comp : {ComponentLoop::Outside, ComponentLoop::Inside}) {
    expectLegal(core::makeBaseline(ParallelGranularity::OverBoxes, comp),
                16, 4);
    expectLegal(core::makeBaseline(ParallelGranularity::WithinBox, comp),
                16, 4);
  }
}

TEST(VerifierLegal, ShiftFuseAllGranularities) {
  for (const auto comp : {ComponentLoop::Outside, ComponentLoop::Inside}) {
    expectLegal(core::makeShiftFuse(ParallelGranularity::OverBoxes, comp),
                16, 4);
    expectLegal(core::makeShiftFuse(ParallelGranularity::WithinBox, comp),
                16, 4);
  }
}

TEST(VerifierLegal, BlockedWavefrontAllGranularities) {
  for (const auto comp : {ComponentLoop::Outside, ComponentLoop::Inside}) {
    expectLegal(
        core::makeBlockedWF(8, ParallelGranularity::OverBoxes, comp), 16,
        4);
    expectLegal(
        core::makeBlockedWF(8, ParallelGranularity::WithinBox, comp), 16,
        4);
  }
}

TEST(VerifierLegal, OverlappedTilesAllGranularities) {
  for (const auto intra :
       {IntraTileSchedule::Basic, IntraTileSchedule::ShiftFuse}) {
    for (const auto par :
         {ParallelGranularity::OverBoxes, ParallelGranularity::WithinBox,
          ParallelGranularity::HybridBoxTile}) {
      expectLegal(core::makeOverlapped(intra, 8, par), 16, 4);
    }
  }
}

TEST(VerifierLegal, RaggedWorkerCounts) {
  // Worker counts that exceed or do not divide the z extent produce empty
  // or uneven slabs; those must not trip coverage or disjointness.
  const auto base =
      core::makeBaseline(ParallelGranularity::WithinBox,
                         ComponentLoop::Inside);
  for (const int nThreads : {3, 15, 16, 23}) {
    expectLegal(base, 16, nThreads);
  }
}

TEST(VerifierLegal, LoweringRejectsRunnerInvalidConfigs) {
  // Configurations the runner would refuse must throw at lowering, not
  // produce a bogus model.
  VariantConfig tiledNoSize =
      core::makeBlockedWF(8, ParallelGranularity::WithinBox,
                          ComponentLoop::Inside);
  tiledNoSize.tileSize = 0;
  EXPECT_THROW(lowerVariant(tiledNoSize, grid::Box::cube(16), 4),
               std::invalid_argument);

  VariantConfig hybridBaseline =
      core::makeBaseline(ParallelGranularity::HybridBoxTile);
  EXPECT_THROW(lowerVariant(hybridBaseline, grid::Box::cube(16), 4),
               std::invalid_argument);

  EXPECT_THROW(
      lowerVariant(core::makeBaseline(ParallelGranularity::WithinBox),
                   grid::Box::cube(16), 0),
      std::invalid_argument);
}

TEST(VerifierLegal, ModelRecordsVariantAndGhost) {
  const ScheduleModel m = lowerVariant(
      core::makeShiftFuse(ParallelGranularity::WithinBox),
      grid::Box::cube(16), 4);
  EXPECT_FALSE(m.variant.empty());
  EXPECT_EQ(m.ghost, 2);
  EXPECT_EQ(m.valid, grid::Box::cube(16));
  // The within-box shift-fuse schedule is the per-cell wavefront: it must
  // carry a cone with all three carry dependences.
  ASSERT_FALSE(m.cones.empty());
  EXPECT_EQ(m.cones[0].deps.size(), 3u);
}

} // namespace
} // namespace fluxdiv::analysis
