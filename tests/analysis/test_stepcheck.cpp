// Whole-step semantic-equivalence prover (analysis/stepcheck): every
// shipped RK scheme is proven equivalent to eager semantics under every
// fuse mode's halo plan (S1-S3, multi-step captures included); every
// seeded step miscompilation of analysis/mutate is rejected with its
// independently predicted witness op; an artificially deepened plan is
// flagged over-deep with the proven-minimal width while that minimum - 1
// demonstrably breaks S1; dead stores and dead exchanges surface as
// advisories and as advisor cost notes; the S4 rebind signature is
// deterministic and sensitive to every key field; and the shared
// VerifyGate runtime honors its compile/env/memoization contract.

#include "analysis/stepcheck.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/costmodel.hpp"
#include "analysis/mutate.hpp"
#include "analysis/verifygate.hpp"
#include "core/stepprogram.hpp"
#include "grid/box.hpp"
#include "kernels/footprint.hpp"
#include "solvers/integrator.hpp"

namespace fluxdiv::analysis {
namespace {

using core::StepFuse;
using core::StepHaloPlan;
using core::StepProgram;
using grid::Box;
using grid::IntVect;
using mutate::StepMutation;
using solvers::Scheme;

constexpr StepFuse kCheckedFuses[] = {StepFuse::Staged, StepFuse::Fused,
                                      StepFuse::CommAvoid};

std::string tag(Scheme scheme, int steps, StepFuse fuse) {
  return std::string(solvers::schemeName(scheme)) + " x" +
         std::to_string(steps) + " / " + core::stepFuseName(fuse);
}

TEST(StepCheck, AllSchemesAllFusesAllStepsEquivalent) {
  for (const Scheme scheme : solvers::kSchemes) {
    for (const int steps : {1, 3}) {
      const StepProgram prog =
          solvers::buildStepProgram(scheme, /*dt=*/1e-3, steps);
      for (const StepFuse fuse : kCheckedFuses) {
        const StepCheckReport rep = checkStepProgram(prog, fuse);
        EXPECT_TRUE(rep.ok()) << tag(scheme, steps, fuse) << ": "
                              << (rep.ok()
                                      ? ""
                                      : rep.diagnostics[0].message());
        EXPECT_TRUE(rep.advisories.empty())
            << tag(scheme, steps, fuse)
            << ": shipped programs must plan tight, live halos";
        EXPECT_GT(rep.exprCount, 0u);
      }
    }
  }
}

TEST(StepCheck, CommAvoidPlanIsDeepenedAndCheckedSound) {
  // Midpoint under CommAvoid: only the per-step u exchange survives,
  // deepened to kNumGhost x rhsEvals; the stage exchange is dropped and
  // its RHS recomputes on the widened halo. stepcheck proves exactly that
  // plan equivalent, which is the paper's comm-avoiding trade stated as a
  // theorem about the recorded program rather than a benchmark outcome.
  const StepProgram prog =
      solvers::buildStepProgram(Scheme::Midpoint, 1e-3);
  const StepHaloPlan plan =
      core::planStepHalos(prog, StepFuse::CommAvoid);
  EXPECT_EQ(plan.depth, kernels::kNumGhost * prog.rhsEvals);
  int dropped = 0;
  for (std::size_t i = 0; i < prog.ops.size(); ++i) {
    if (plan.width[i] < 0) {
      ++dropped;
      EXPECT_EQ(prog.ops[i].kind, core::StepOpKind::Exchange);
    }
  }
  EXPECT_EQ(dropped, 1) << "one stage exchange avoided per step";
  EXPECT_TRUE(
      checkStepProgram(prog, StepFuse::CommAvoid, plan).ok());
}

/// The uniform mutation protocol of analysis/mutate: advisory mutations
/// need a clean report plus the predicted over-deep advisory; the rest
/// need the predicted diagnostic kind at the predicted witness op, first.
void expectCaught(const char* name, const StepMutation& m, StepFuse fuse,
                  const std::string& where) {
  if (!m.valid) {
    return;
  }
  StepCheckOptions opts;
  if (m.useReference) {
    opts.reference = &m.reference;
  }
  const StepCheckReport rep =
      checkStepProgram(m.prog, fuse, m.plan, opts);
  if (m.expectAdvisory) {
    EXPECT_TRUE(rep.ok())
        << name << " [" << where << "] " << m.what
        << ": a deepened halo must stay equivalent, got "
        << (rep.ok() ? "" : rep.diagnostics[0].message());
    bool advised = false;
    for (const StepAdvisory& a : rep.advisories) {
      advised = advised || (a.kind == StepNoteKind::OverDeepHalo &&
                            a.op == m.witnessOp &&
                            a.minWidth == m.expectMinWidth);
    }
    EXPECT_TRUE(advised)
        << name << " [" << where << "] " << m.what
        << ": expected over-deep-halo advisory at op " << m.witnessOp
        << " with proven minimum " << m.expectMinWidth;
    return;
  }
  ASSERT_FALSE(rep.ok())
      << name << " [" << where << "] missed: " << m.what;
  EXPECT_EQ(rep.diagnostics[0].kind, m.expect)
      << name << " [" << where << "] " << m.what << ": got "
      << rep.diagnostics[0].message();
  EXPECT_EQ(rep.diagnostics[0].op, m.witnessOp)
      << name << " [" << where << "] " << m.what << ": got "
      << rep.diagnostics[0].message();
}

TEST(StepCheck, MutationsRejectedWithPredictedWitness) {
  for (const Scheme scheme : solvers::kSchemes) {
    for (const int steps : {1, 3}) {
      const StepProgram prog =
          solvers::buildStepProgram(scheme, 1e-3, steps);
      for (const StepFuse fuse : kCheckedFuses) {
        for (std::uint64_t seed = 0; seed < 5; ++seed) {
          const std::string where =
              tag(scheme, steps, fuse) + ", seed " +
              std::to_string(seed);
          expectCaught("drop",
                       mutate::dropStepExchange(prog, fuse, seed), fuse,
                       where);
          expectCaught("shallow",
                       mutate::shallowStepHalo(prog, fuse, seed), fuse,
                       where);
          expectCaught("reorder",
                       mutate::reorderStepOps(prog, fuse, seed), fuse,
                       where);
          expectCaught("skew", mutate::skewStepCoeff(prog, fuse, seed),
                       fuse, where);
          expectCaught("deepen",
                       mutate::deepenStepHalo(prog, fuse, seed), fuse,
                       where);
        }
      }
    }
  }
}

TEST(StepCheck, EveryMutationClassFindsACandidateSomewhere) {
  // The suite above silently skips invalid mutations; guard that each
  // class actually fires on the shipped programs so a regressed factory
  // cannot hollow the suite out.
  int counts[5] = {0, 0, 0, 0, 0};
  for (const Scheme scheme : solvers::kSchemes) {
    const StepProgram prog = solvers::buildStepProgram(scheme, 1e-3);
    for (const StepFuse fuse : kCheckedFuses) {
      counts[0] += mutate::dropStepExchange(prog, fuse, 0).valid;
      counts[1] += mutate::shallowStepHalo(prog, fuse, 0).valid;
      counts[2] += mutate::reorderStepOps(prog, fuse, 0).valid;
      counts[3] += mutate::skewStepCoeff(prog, fuse, 0).valid;
      counts[4] += mutate::deepenStepHalo(prog, fuse, 0).valid;
    }
  }
  for (int c : counts) {
    EXPECT_GT(c, 0);
  }
}

TEST(StepCheck, OverDeepHaloAdvisedAndMinimumIsSharp) {
  // The S3 acceptance case end to end: deepen the comm-avoiding u
  // exchange by one layer. S1 must still hold, the advisory must price
  // the width back down to the planned minimum, and that minimum - 1
  // must provably break S1 - i.e. the advisory's minWidth is sharp, not
  // merely "some smaller width passed".
  const StepProgram prog =
      solvers::buildStepProgram(Scheme::Midpoint, 1e-3);
  const StepHaloPlan plan =
      core::planStepHalos(prog, StepFuse::CommAvoid);
  int deepOp = -1;
  for (std::size_t i = 0; i < prog.ops.size(); ++i) {
    if (prog.ops[i].kind == core::StepOpKind::Exchange &&
        plan.width[i] > 0) {
      deepOp = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(deepOp, 0);
  const int planned = plan.width[static_cast<std::size_t>(deepOp)];

  StepHaloPlan deepened = plan;
  deepened.width[static_cast<std::size_t>(deepOp)] = planned + 1;
  deepened.depth = std::max(deepened.depth, planned + 1);
  const StepCheckReport rep =
      checkStepProgram(prog, StepFuse::CommAvoid, deepened);
  ASSERT_TRUE(rep.ok()) << rep.diagnostics[0].message();
  ASSERT_EQ(rep.advisories.size(), 1u);
  EXPECT_EQ(rep.advisories[0].kind, StepNoteKind::OverDeepHalo);
  EXPECT_EQ(rep.advisories[0].op, deepOp);
  EXPECT_EQ(rep.advisories[0].width, planned + 1);
  EXPECT_EQ(rep.advisories[0].minWidth, planned);
  EXPECT_GT(rep.advisories[0].recomputeCells, 0);

  StepHaloPlan shaved = plan;
  shaved.width[static_cast<std::size_t>(deepOp)] = planned - 1;
  EXPECT_FALSE(
      checkStepProgram(prog, StepFuse::CommAvoid, shaved).ok())
      << "minWidth - 1 must break S1, else the minimum is not minimal";
}

StepProgram programWithDeadOps() {
  StepProgram p;
  p.nSlots = 3;
  p.rhsEvals = 1;
  p.nSteps = 1;
  p.slotNames = {"u", "k", "scratch"};
  p.exchange(0);
  p.rhs(0, 1);
  p.axpy(0, 1, 0.5);
  p.copy(0, 2); // scratch is never read: dead store
  p.exchange(0); // trailing ghost fill nothing consumes: dead exchange
  return p;
}

TEST(StepCheck, DeadStoreAndDeadExchangeAdvised) {
  const StepProgram prog = programWithDeadOps();
  const StepCheckReport rep =
      checkStepProgram(prog, StepFuse::Fused);
  ASSERT_TRUE(rep.ok()) << rep.diagnostics[0].message();
  bool deadStore = false;
  bool deadExchange = false;
  for (const StepAdvisory& a : rep.advisories) {
    deadStore = deadStore ||
                (a.kind == StepNoteKind::DeadStore && a.op == 3);
    deadExchange = deadExchange ||
                   (a.kind == StepNoteKind::DeadExchange && a.op == 4);
  }
  EXPECT_TRUE(deadStore) << "copy into never-read scratch at op 3";
  EXPECT_TRUE(deadExchange) << "trailing exchange at op 4";

  // And the advisor-facing lift: both become DeadStore cost notes (the
  // cost model folds the two liveness kinds into one note kind).
  const std::vector<CostNote> notes = stepCheckNotes(rep, prog);
  int liveness = 0;
  for (const CostNote& n : notes) {
    liveness += n.kind == CostNoteKind::DeadStore;
  }
  EXPECT_EQ(liveness, 2);
}

TEST(StepCheck, OverDeepNotePricedForAdvisor) {
  const StepProgram prog =
      solvers::buildStepProgram(Scheme::Midpoint, 1e-3);
  StepHaloPlan plan = core::planStepHalos(prog, StepFuse::CommAvoid);
  plan.width[0] += 1;
  plan.depth = std::max(plan.depth, plan.width[0]);
  const StepCheckReport rep =
      checkStepProgram(prog, StepFuse::CommAvoid, plan);
  const std::vector<CostNote> notes = stepCheckNotes(rep, prog);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].kind, CostNoteKind::OverDeepHalo);
  EXPECT_NE(notes[0].message().find("over-deep"), std::string::npos);
}

StepShapeKey baseShapeKey() {
  StepShapeKey key;
  key.domainBox = Box(IntVect::zero(), IntVect{31, 31, 31});
  key.periodic = {true, true, true};
  key.boxSize = IntVect{16, 16, 16};
  key.nGhost = 2;
  key.nComp = 1;
  key.invDx = 32.0;
  key.dissipation = 0.0;
  key.hasBoundary = false;
  return key;
}

TEST(StepSignature, DeterministicAndSensitiveToEveryField) {
  const StepProgram prog =
      solvers::buildStepProgram(Scheme::SSPRK3, 1e-3);
  const StepShapeKey key = baseShapeKey();
  const std::uint64_t sig =
      stepSignature(prog, StepFuse::Fused, key);
  EXPECT_EQ(sig, stepSignature(prog, StepFuse::Fused, key));
  EXPECT_NE(sig, stepSignature(prog, StepFuse::CommAvoid, key));
  EXPECT_NE(sig, stepSignature(
                     solvers::buildStepProgram(Scheme::SSPRK3, 2e-3),
                     StepFuse::Fused, key));
  EXPECT_NE(sig, stepSignature(
                     solvers::buildStepProgram(Scheme::RK4, 1e-3),
                     StepFuse::Fused, key));

  StepShapeKey k = key;
  k.domainBox = Box(IntVect::zero(), IntVect{63, 31, 31});
  EXPECT_NE(sig, stepSignature(prog, StepFuse::Fused, k));
  k = key;
  k.periodic[1] = false;
  EXPECT_NE(sig, stepSignature(prog, StepFuse::Fused, k));
  k = key;
  k.boxSize = IntVect{8, 16, 16};
  EXPECT_NE(sig, stepSignature(prog, StepFuse::Fused, k));
  k = key;
  k.nGhost = 3;
  EXPECT_NE(sig, stepSignature(prog, StepFuse::Fused, k));
  k = key;
  k.nComp = 2;
  EXPECT_NE(sig, stepSignature(prog, StepFuse::Fused, k));
  k = key;
  k.invDx = 64.0;
  EXPECT_NE(sig, stepSignature(prog, StepFuse::Fused, k));
  k = key;
  k.dissipation = 0.01;
  EXPECT_NE(sig, stepSignature(prog, StepFuse::Fused, k));
  k = key;
  k.hasBoundary = true;
  EXPECT_NE(sig, stepSignature(prog, StepFuse::Fused, k));

  const std::string hex = stepSignatureHex(sig);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex, stepSignatureHex(sig));
}

TEST(VerifyGate, CompiledOutGateNeverFires) {
  VerifyGate gate("FLUXDIV_TEST_GATE_UNSET", /*compiledIn=*/false);
  EXPECT_FALSE(gate.enabled());
  EXPECT_FALSE(gate.shouldVerify("shape"));
  EXPECT_EQ(gate.verifiedShapes(), 0u);
}

TEST(VerifyGate, EnvironmentDisablesAndMemoizes) {
  // The environment is read at construction, so per-test setenv is safe.
  for (const char* off : {"0", "off", "false"}) {
    ::setenv("FLUXDIV_TEST_GATE_A", off, 1);
    VerifyGate gate("FLUXDIV_TEST_GATE_A", /*compiledIn=*/true);
    EXPECT_FALSE(gate.enabled()) << off;
    EXPECT_FALSE(gate.shouldVerify("shape")) << off;
  }
  ::setenv("FLUXDIV_TEST_GATE_A", "1", 1);
  {
    VerifyGate gate("FLUXDIV_TEST_GATE_A", /*compiledIn=*/true);
    EXPECT_TRUE(gate.enabled());
  }
  ::unsetenv("FLUXDIV_TEST_GATE_A");
  VerifyGate gate("FLUXDIV_TEST_GATE_A", /*compiledIn=*/true);
  EXPECT_TRUE(gate.enabled());
  EXPECT_TRUE(gate.shouldVerify("a"));
  EXPECT_FALSE(gate.shouldVerify("a")) << "each shape verifies once";
  EXPECT_TRUE(gate.shouldVerify("b"));
  EXPECT_EQ(gate.verifiedShapes(), 2u);
}

TEST(VerifyGate, FailureMessageFormat) {
  const std::string one = verifyFailureMessage("gate failed", {"d1"});
  EXPECT_NE(one.find("gate failed (1 diagnostic(s)):"),
            std::string::npos);
  EXPECT_NE(one.find("\n  d1"), std::string::npos);
  EXPECT_EQ(one.find("more"), std::string::npos);

  const std::string six = verifyFailureMessage(
      "gate failed", {"d1", "d2", "d3", "d4", "d5", "d6"});
  EXPECT_NE(six.find("(6 diagnostic(s)):"), std::string::npos);
  EXPECT_NE(six.find("\n  d4"), std::string::npos);
  EXPECT_EQ(six.find("d5"), std::string::npos)
      << "only the first four diagnostics are spelled out";
  EXPECT_NE(six.find("(+2 more)"), std::string::npos);
}

} // namespace
} // namespace fluxdiv::analysis
