// Tests of the kernel footprint contract checker (analysis/kernelcheck).
// Four layers: every shipped kernel shape — scalar and pencil stage
// drivers, the reference pipelines, a variant executor — must prove
// sound (K1) and tight (K2); hand-written buggy kernels must be rejected
// with the precise witness offset (undeclared reads and writes,
// non-affine absolute indexing, an undeclared accumulate); the seeded
// kernel miscompilations of analysis/mutate must each be caught with
// their predicted witness; and the lowered level-executor task graphs
// must agree with the proven hulls (K3), with a shrunk read footprint
// rejected as ContractMismatch.

#include "analysis/kernelcheck.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/graphcheck.hpp"
#include "analysis/mutate.hpp"
#include "core/exec_level.hpp"
#include "core/kernelshapes.hpp"
#include "core/variant.hpp"
#include "grid/box.hpp"
#include "grid/leveldata.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/footprint.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::analysis {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::FArrayBox;
using grid::IntVect;
using grid::LevelData;
using grid::Pitch;
using grid::ProblemDomain;
using grid::Real;
using kernels::Stage;

/// Small exhaustive probe: every input slot perturbed, both pitches'
/// defaults otherwise.
ProbeOptions smallProbe() {
  ProbeOptions opts;
  opts.boxSize = 5;
  return opts;
}

bool hasDiag(const std::vector<KernelDiag>& diags, KernelDiagKind kind,
             const std::string& role, const IntVect& offset) {
  for (const KernelDiag& d : diags) {
    if (d.kind == kind && d.role == role && d.offset == offset) {
      return true;
    }
  }
  return false;
}

std::string diagDump(const std::vector<KernelDiag>& diags) {
  std::string out;
  for (const KernelDiag& d : diags) {
    out += "  " + d.message() + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// K1 + K2 over the shipped kernels.
// ---------------------------------------------------------------------------

TEST(KernelCheck, StageDriversSoundAndTight) {
  for (const KernelShape& shape : builtinStageShapes()) {
    const KernelCheckReport rep =
        checkKernelFootprints(inferFootprint(shape, smallProbe()));
    EXPECT_TRUE(rep.ok()) << shape.name << " diagnostics:\n"
                          << diagDump(rep.diagnostics);
    EXPECT_TRUE(rep.advisories.empty())
        << shape.name << " advisories:\n" << diagDump(rep.advisories);
    EXPECT_GT(rep.rolesChecked, 0);
    EXPECT_GT(rep.probes, 0);
  }
}

TEST(KernelCheck, ReferencePipelinesSoundAndTight) {
  for (const KernelShape& shape : builtinPipelineShapes()) {
    const KernelCheckReport rep =
        checkKernelFootprints(inferFootprint(shape, smallProbe()));
    EXPECT_TRUE(rep.ok()) << shape.name << " diagnostics:\n"
                          << diagDump(rep.diagnostics);
    EXPECT_TRUE(rep.advisories.empty())
        << shape.name << " advisories:\n" << diagDump(rep.advisories);
    // 5 x 5 component roles plus velocity attribution components, and the
    // full 13-point plus-shape on the diagonal roles.
    EXPECT_EQ(rep.rolesChecked, kernels::kNumComp * kernels::kNumComp + 2);
  }
}

TEST(KernelCheck, VariantExecutorSoundAndTight) {
  // One executor smoke check here (sampled; the tool sweeps all five
  // families exhaustively): the blocked wavefront runs tiles through
  // carry-slot pencils, the code path most unlike the reference sweep.
  const KernelShape shape = core::makeVariantShape(
      core::makeBlockedWF(2, core::ParallelGranularity::WithinBox,
                          core::ComponentLoop::Outside),
      /*nThreads=*/2);
  ProbeOptions opts = smallProbe();
  opts.boxSize = 6;
  opts.exhaustiveSlotLimit = 0; // force the structured sample
  opts.sampleTarget = 400;
  const KernelCheckReport rep =
      checkKernelFootprints(inferFootprint(shape, opts));
  EXPECT_TRUE(rep.ok()) << diagDump(rep.diagnostics);
  EXPECT_TRUE(rep.advisories.empty()) << diagDump(rep.advisories);
}

TEST(KernelCheck, CrossSizeAndPitchAgreement) {
  // The affine lift: the same offsets at every size and pitch.
  for (const KernelShape& shape : builtinStageShapes()) {
    if (shape.name.find("pencil:FusedCell") == std::string::npos) {
      continue;
    }
    const KernelFootprintModel m = inferFootprintAcross(
        shape, {4, 6}, {Pitch::Padded, Pitch::Dense}, smallProbe());
    EXPECT_TRUE(checkKernelFootprints(m).ok());
  }
}

// ---------------------------------------------------------------------------
// Hand-written buggy kernels: each rejected with the precise witness.
// ---------------------------------------------------------------------------

KernelShape pointwiseShape(const char* name, KernelFn fn) {
  KernelShape s;
  s.name = name;
  s.stage = Stage::EvalFlux2; // declared pointwise
  s.dir = 0;
  s.inComps = 1;
  s.outComps = 1;
  s.outputDep = OutputDep::Overwrite;
  s.faceOutput = false;
  s.fn = std::move(fn);
  return s;
}

TEST(KernelCheck, UndeclaredReadCaught) {
  // Declared pointwise, actually reads the +x neighbor too.
  const KernelShape shape = pointwiseShape(
      "buggy:wide-read",
      [](const FArrayBox& in, FArrayBox& out, const Box& cells, Real) {
        for (int k = cells.lo(2); k <= cells.hi(2); ++k) {
          for (int j = cells.lo(1); j <= cells.hi(1); ++j) {
            for (int i = cells.lo(0); i <= cells.hi(0); ++i) {
              out.dataPtr(0)[out.offset(i, j, k)] =
                  in.dataPtr(0)[in.offset(i, j, k)] +
                  in.dataPtr(0)[in.offset(i + 1, j, k)];
            }
          }
        }
      });
  const KernelCheckReport rep =
      checkKernelFootprints(inferFootprint(shape, smallProbe()));
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(hasDiag(rep.diagnostics, KernelDiagKind::UndeclaredRead,
                      "read c0->c0", IntVect{1, 0, 0}))
      << diagDump(rep.diagnostics);
}

TEST(KernelCheck, UndeclaredWriteCaught) {
  // Declared pointwise writes, actually scatters into the +y neighbor.
  const KernelShape shape = pointwiseShape(
      "buggy:scatter-write",
      [](const FArrayBox& in, FArrayBox& out, const Box& cells, Real) {
        for (int k = cells.lo(2); k <= cells.hi(2); ++k) {
          for (int j = cells.lo(1); j <= cells.hi(1); ++j) {
            for (int i = cells.lo(0); i <= cells.hi(0); ++i) {
              const Real v = in.dataPtr(0)[in.offset(i, j, k)];
              out.dataPtr(0)[out.offset(i, j, k)] = v;
              out.dataPtr(0)[out.offset(i, j + 1, k)] = v;
            }
          }
        }
      });
  const KernelCheckReport rep =
      checkKernelFootprints(inferFootprint(shape, smallProbe()));
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(hasDiag(rep.diagnostics, KernelDiagKind::UndeclaredWrite,
                      "write", IntVect{0, 1, 0}))
      << diagDump(rep.diagnostics);
}

TEST(KernelCheck, NonAffineAbsoluteIndexCaught) {
  // Every output cell reads one fixed absolute cell — not an offset
  // stencil, so no single offset holds at every output cell.
  const KernelShape shape = pointwiseShape(
      "buggy:absolute-index",
      [](const FArrayBox& in, FArrayBox& out, const Box& cells, Real) {
        const Real anchor =
            in.dataPtr(0)[in.offset(cells.lo(0), cells.lo(1), cells.lo(2))];
        for (int k = cells.lo(2); k <= cells.hi(2); ++k) {
          for (int j = cells.lo(1); j <= cells.hi(1); ++j) {
            for (int i = cells.lo(0); i <= cells.hi(0); ++i) {
              out.dataPtr(0)[out.offset(i, j, k)] =
                  in.dataPtr(0)[in.offset(i, j, k)] + anchor;
            }
          }
        }
      });
  const KernelCheckReport rep =
      checkKernelFootprints(inferFootprint(shape, smallProbe()));
  EXPECT_FALSE(rep.ok());
  bool nonAffine = false;
  for (const KernelDiag& d : rep.diagnostics) {
    nonAffine |= d.kind == KernelDiagKind::NonAffineAccess;
  }
  EXPECT_TRUE(nonAffine) << diagDump(rep.diagnostics);
}

TEST(KernelCheck, UndeclaredAccumulateCaught) {
  // Declared Overwrite, actually accumulates: the output's prior
  // contents reach the result, an undeclared self-dependence.
  const KernelShape shape = pointwiseShape(
      "buggy:accumulate",
      [](const FArrayBox& in, FArrayBox& out, const Box& cells, Real) {
        for (int k = cells.lo(2); k <= cells.hi(2); ++k) {
          for (int j = cells.lo(1); j <= cells.hi(1); ++j) {
            for (int i = cells.lo(0); i <= cells.hi(0); ++i) {
              out.dataPtr(0)[out.offset(i, j, k)] +=
                  in.dataPtr(0)[in.offset(i, j, k)];
            }
          }
        }
      });
  const KernelCheckReport rep =
      checkKernelFootprints(inferFootprint(shape, smallProbe()));
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(hasDiag(rep.diagnostics, KernelDiagKind::UndeclaredRead,
                      "output", IntVect::zero()))
      << diagDump(rep.diagnostics);
}

// ---------------------------------------------------------------------------
// K2 fixture: a widened declared set must yield an Overdeclared advisory
// (and an OverdeclaredFootprint cost note), not a soundness failure.
// ---------------------------------------------------------------------------

TEST(KernelCheck, WidenedDeclaredSetIsOverdeclared) {
  KernelShape fused;
  for (KernelShape& shape : builtinStageShapes()) {
    if (shape.name == "scalar:FusedCell[d=x]") {
      fused = std::move(shape);
    }
  }
  ASSERT_FALSE(fused.name.empty());
  KernelFootprintModel m = inferFootprint(fused, smallProbe());
  // Simulate fusedCellReadOffsets widened to +/-3 without touching the
  // kernel: the extra offset is declared but never read.
  const IntVect extra{3, 0, 0};
  ASSERT_FALSE(m.reads.empty());
  m.reads.front().declared.push_back(extra);
  const KernelCheckReport rep = checkKernelFootprints(m);
  EXPECT_TRUE(rep.ok()) << diagDump(rep.diagnostics);
  EXPECT_TRUE(hasDiag(rep.advisories, KernelDiagKind::Overdeclared,
                      m.reads.front().role, extra))
      << diagDump(rep.advisories);

  const std::vector<CostNote> notes = overdeclaredNotes(rep);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes.front().kind, CostNoteKind::OverdeclaredFootprint);
  EXPECT_EQ(notes.front().where, fused.name);
  EXPECT_EQ(static_cast<int>(notes.front().actualBytes), 1);
}

// ---------------------------------------------------------------------------
// Seeded miscompilations: each caught with its predicted witness.
// ---------------------------------------------------------------------------

TEST(KernelCheck, SeededMutationsCaught) {
  std::vector<KernelFootprintModel> models;
  for (const KernelShape& shape : builtinStageShapes()) {
    if (shape.name == "pencil:FusedCell[d=y]" ||
        shape.name == "scalar:EvalFlux1[d=z]") {
      models.push_back(inferFootprint(shape, smallProbe()));
    }
  }
  ASSERT_EQ(models.size(), 2u);

  int executed = 0;
  for (const KernelFootprintModel& m : models) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const mutate::KernelMutation muts[] = {
          mutate::widenKernelRead(m, seed),
          mutate::shiftKernelStencil(m, seed),
          mutate::forgetDeclaredOffset(m, seed),
      };
      for (const mutate::KernelMutation& mut : muts) {
        ASSERT_NE(mut.expect, KernelDiagKind::Ok)
            << m.kernel << " offered no candidate: " << mut.what;
        ++executed;
        const KernelCheckReport rep = checkKernelFootprints(mut.model);
        EXPECT_TRUE(hasDiag(rep.diagnostics, mut.expect, mut.role,
                            mut.offset))
            << mut.what << "\n" << diagDump(rep.diagnostics);
        if (mut.expectAlso != KernelDiagKind::Ok) {
          bool also = false;
          for (const KernelDiag& d : rep.advisories) {
            also |= d.kind == mut.expectAlso && d.role == mut.role;
          }
          EXPECT_TRUE(also) << mut.what << "\n" << diagDump(rep.advisories);
        }
      }
    }
  }
  EXPECT_EQ(executed, 2 * 4 * 3);
}

// ---------------------------------------------------------------------------
// K3: lowered task graphs against the proven hulls.
// ---------------------------------------------------------------------------

struct Level {
  LevelData phi0;
  LevelData phi1;
};

Level makeLevel(const DisjointBoxLayout& dbl) {
  Level lv{LevelData(dbl, kernels::kNumComp, kernels::kNumGhost),
           LevelData(dbl, kernels::kNumComp, 0)};
  kernels::initializeExemplar(lv.phi0);
  return lv;
}

TaskGraphModel lowerSmallGraph(core::LevelPolicy policy) {
  const int boxSize = 8;
  const ProblemDomain dom(
      Box(IntVect::zero(), IntVect{2 * boxSize - 1, boxSize - 1,
                                   boxSize - 1}));
  const DisjointBoxLayout dbl(dom, boxSize);
  core::LevelExecOptions opts;
  opts.policy = policy;
  core::LevelExecutor exec(
      core::makeBaseline(core::ParallelGranularity::WithinBox), 2, opts);
  Level lv = makeLevel(dbl);
  return exec.lowerGraph(lv.phi0, lv.phi1, /*withExchange=*/false);
}

TEST(KernelCheck, GraphFootprintsAgreeWithDeclared) {
  for (const core::LevelPolicy policy :
       {core::LevelPolicy::BoxParallel, core::LevelPolicy::Hybrid}) {
    const std::vector<KernelDiag> diags =
        checkGraphFootprints(lowerSmallGraph(policy), declaredFootprints());
    EXPECT_TRUE(diags.empty()) << diagDump(diags);
  }
}

TEST(KernelCheck, GraphFootprintsAgreeWithProven) {
  // The hulls proven by actual probing, not the declared contract.
  std::vector<KernelFootprintModel> models;
  for (const KernelShape& shape : builtinStageShapes()) {
    if (shape.name.find("scalar:EvalFlux1") != std::string::npos) {
      models.push_back(inferFootprint(shape, smallProbe()));
    }
  }
  models.push_back(
      inferFootprint(builtinPipelineShapes().front(), smallProbe()));
  const ProvenFootprints proven = extractProven(models);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(proven.fused[d], kernels::fusedCellReadOffsets(d));
    EXPECT_EQ(proven.evalFlux1[d], kernels::evalFlux1ReadOffsets(d));
  }
  const std::vector<KernelDiag> diags = checkGraphFootprints(
      lowerSmallGraph(core::LevelPolicy::BoxParallel), proven);
  EXPECT_TRUE(diags.empty()) << diagDump(diags);
}

TEST(KernelCheck, ShrunkGraphReadIsContractMismatch) {
  TaskGraphModel model = lowerSmallGraph(core::LevelPolicy::BoxParallel);
  // Shrink every Phi0 read of the first Phi1-writing task below the
  // stencil reach: its declared footprint no longer covers the proven one.
  bool shrunk = false;
  for (GraphTask& t : model.tasks) {
    bool writesPhi1 = false;
    for (const TaskAccess& w : t.writes) {
      writesPhi1 |= w.field == FieldId::Phi1;
    }
    if (!writesPhi1) {
      continue;
    }
    for (TaskAccess& r : t.reads) {
      if (r.field == FieldId::Phi0) {
        r.region = Box(r.region.lo() + IntVect{2, 0, 0},
                       r.region.hi() - IntVect{2, 0, 0});
        shrunk = true;
      }
    }
    if (shrunk) {
      break;
    }
  }
  ASSERT_TRUE(shrunk);
  const std::vector<KernelDiag> diags =
      checkGraphFootprints(model, declaredFootprints());
  bool mismatch = false;
  for (const KernelDiag& d : diags) {
    mismatch |= d.kind == KernelDiagKind::ContractMismatch;
  }
  EXPECT_TRUE(mismatch) << diagDump(diags);
}

// ---------------------------------------------------------------------------
// Small pieces.
// ---------------------------------------------------------------------------

TEST(KernelCheck, StageTags) {
  EXPECT_EQ(kernelStageTag(Stage::EvalFlux1, 1), "EvalFlux1[d=y]");
  EXPECT_EQ(kernelStageTag(Stage::FusedCell, -1), "FusedCell[pipeline]");
}

TEST(KernelCheck, BuiltinShapeInventory) {
  // 4 stages x 3 directions x {scalar, pencil} + 2 reference pipelines.
  EXPECT_EQ(builtinStageShapes().size(), 24u);
  EXPECT_EQ(builtinPipelineShapes().size(), 2u);
  EXPECT_EQ(builtinShapes().size(), 26u);
}

} // namespace
} // namespace fluxdiv::analysis
