#include "memmodel/cache_sim.hpp"

#include <gtest/gtest.h>

namespace fluxdiv::memmodel {
namespace {

CacheSim tinySim() {
  // One 1 KiB, 2-way, 64 B-line level: 16 lines, 8 sets.
  return CacheSim({{"L1", 1024, 2, 64}});
}

TEST(CacheLevelSim, HitAfterMiss) {
  CacheLevelSim lvl({"L1", 1024, 2, 64});
  bool dirty = false;
  EXPECT_FALSE(lvl.access(0, false, dirty));
  EXPECT_TRUE(lvl.access(0, false, dirty));
  EXPECT_EQ(lvl.stats().misses, 1u);
  EXPECT_EQ(lvl.stats().hits, 1u);
}

TEST(CacheLevelSim, LruEvictionWithinSet) {
  CacheLevelSim lvl({"L1", 1024, 2, 64}); // 8 sets, 2 ways
  bool dirty = false;
  // Tags 0, 8, 16 all map to set 0; with 2 ways, inserting the third
  // evicts the least recently used (tag 0).
  lvl.access(0, false, dirty);
  lvl.access(8, false, dirty);
  lvl.access(16, false, dirty);
  EXPECT_FALSE(lvl.access(0, false, dirty)) << "tag 0 should be evicted";
  // tag 16 stays resident through the above (touched most recently before
  // 0's reinsertion evicted 8).
  EXPECT_TRUE(lvl.access(16, false, dirty));
}

TEST(CacheLevelSim, DirtyEvictionReported) {
  CacheLevelSim lvl({"L1", 1024, 2, 64});
  bool dirty = false;
  lvl.access(0, true, dirty); // write -> dirty line
  lvl.access(8, false, dirty);
  lvl.access(16, false, dirty); // evicts tag 0 (dirty)
  EXPECT_TRUE(dirty);
  EXPECT_EQ(lvl.stats().writebacks, 1u);
}

TEST(CacheSim, SequentialStreamMissesOncePerLine) {
  CacheSim sim = tinySim();
  for (int i = 0; i < 64; ++i) {
    sim.read(static_cast<std::uint64_t>(i) * 8); // 8 doubles per 64B line
  }
  EXPECT_EQ(sim.levels()[0].stats().misses, 8u);
  EXPECT_EQ(sim.levels()[0].stats().hits, 56u);
  EXPECT_EQ(sim.dramBytes(), 8u * 64);
  EXPECT_EQ(sim.requestBytes(), 64u * 8);
}

TEST(CacheSim, WorkingSetLargerThanCacheThrashes) {
  CacheSim sim = tinySim(); // 1 KiB
  // Stream 4 KiB twice: no reuse captured.
  for (int pass = 0; pass < 2; ++pass) {
    for (int line = 0; line < 64; ++line) {
      sim.read(static_cast<std::uint64_t>(line) * 64);
    }
  }
  EXPECT_EQ(sim.levels()[0].stats().misses, 128u);
}

TEST(CacheSim, WorkingSetSmallerThanCacheIsCapturedOnRepeat) {
  CacheSim sim = tinySim();
  for (int pass = 0; pass < 4; ++pass) {
    for (int line = 0; line < 8; ++line) {
      sim.read(static_cast<std::uint64_t>(line) * 64);
    }
  }
  EXPECT_EQ(sim.levels()[0].stats().misses, 8u); // first pass only
}

TEST(CacheSim, MultiLevelMissPropagation) {
  CacheSim sim({{"L1", 512, 2, 64}, {"L2", 4096, 4, 64}});
  // 2 KiB working set: spills L1 (512 B), fits L2.
  for (int pass = 0; pass < 3; ++pass) {
    for (int line = 0; line < 32; ++line) {
      sim.read(static_cast<std::uint64_t>(line) * 64);
    }
  }
  EXPECT_GT(sim.levels()[0].stats().misses, 32u); // L1 thrashes
  EXPECT_EQ(sim.levels()[1].stats().misses, 32u); // L2 captures reuse
  EXPECT_EQ(sim.dramBytes(), 32u * 64);
}

TEST(CacheSim, StraddlingAccessTouchesTwoLines) {
  CacheSim sim = tinySim();
  sim.access(60, 8, false); // crosses the line boundary at 64
  EXPECT_EQ(sim.levels()[0].stats().misses, 2u);
}

TEST(CacheSim, WritebackCountsTowardDramBytes) {
  CacheSim sim = tinySim(); // 16 lines total
  for (int line = 0; line < 16; ++line) {
    sim.write(static_cast<std::uint64_t>(line) * 64);
  }
  // Evict everything with a second, clean working set.
  for (int line = 16; line < 32; ++line) {
    sim.read(static_cast<std::uint64_t>(line) * 64);
  }
  // 32 fills + 16 dirty writebacks.
  EXPECT_EQ(sim.dramBytes(), (32u + 16u) * 64);
}

TEST(CacheSim, ResetStatsClearsCounters) {
  CacheSim sim = tinySim();
  sim.read(0);
  sim.resetStats();
  EXPECT_EQ(sim.dramBytes(), 0u);
  EXPECT_EQ(sim.requestBytes(), 0u);
  EXPECT_EQ(sim.levels()[0].stats().accesses, 0u);
}

TEST(CacheSim, DirectMappedConflictsOnPowerOfTwoStride) {
  // Classic pathology the set-indexing must reproduce: a direct-mapped
  // cache thrashes when the stride equals the cache way size, while the
  // same footprint with stride 1 fits.
  CacheSim direct({{"L1", 1024, 1, 64}}); // 16 sets, 1 way
  // 4 lines, all mapping to set 0 (stride = 16 lines), accessed twice.
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      direct.read(static_cast<std::uint64_t>(i) * 16 * 64);
    }
  }
  EXPECT_EQ(direct.levels()[0].stats().misses, 8u); // zero reuse captured

  CacheSim assoc({{"L1", 1024, 4, 64}}); // 4 ways: same set, all fit
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      assoc.read(static_cast<std::uint64_t>(i) * 4 * 64);
    }
  }
  EXPECT_EQ(assoc.levels()[0].stats().misses, 4u); // second pass hits
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim({}), std::invalid_argument);
  EXPECT_THROW(CacheSim({{"L1", 0, 2, 64}}), std::invalid_argument);
  EXPECT_THROW(CacheSim({{"L1", 1024, 2, 64}, {"L2", 4096, 4, 128}}),
               std::invalid_argument);
}

} // namespace
} // namespace fluxdiv::memmodel
