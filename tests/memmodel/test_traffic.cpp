// Cross-validation of the memory-traffic substrate: the trace-driven
// CacheSim and the analytic model must both reproduce the orderings the
// paper measured with VTune (Sec. VI-B): baseline traffic blows up once
// temporaries exceed cache, shift-fuse cuts it substantially, tiled
// schedules approach the compulsory floor.

#include <gtest/gtest.h>

#include "memmodel/trace.hpp"
#include "memmodel/traffic_model.hpp"

namespace fluxdiv::memmodel {
namespace {

using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::VariantConfig;

double simDramBytes(const VariantConfig& cfg, int n, std::size_t llc) {
  CacheSim sim = CacheSim::makeTypical(32 * 1024, 256 * 1024, llc);
  traceBoxEvaluation(sim, cfg, n);
  return static_cast<double>(sim.dramBytes());
}

TEST(Trace, RequestVolumeScalesWithBox) {
  CacheSim a = CacheSim::makeTypical();
  CacheSim b = CacheSim::makeTypical();
  const auto cfg = core::makeBaseline(ParallelGranularity::OverBoxes);
  traceBoxEvaluation(a, cfg, 8);
  traceBoxEvaluation(b, cfg, 16);
  // ~8x the cells -> ~8x the requested bytes (faces add a bit less).
  const double ratio =
      double(b.requestBytes()) / double(a.requestBytes());
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 10.0);
}

TEST(Trace, SmallBoxFitsInCacheSoTrafficIsCompulsory) {
  // N=16 with a 6 MiB LLC: the paper's small-box regime. DRAM traffic
  // should be near the compulsory floor (read phi0, RMW phi1), far below
  // the requested volume.
  const auto cfg = core::makeBaseline(ParallelGranularity::OverBoxes);
  CacheSim sim = CacheSim::makeTypical();
  traceBoxEvaluation(sim, cfg, 16);
  const double compulsory = 8.0 * 5 * (20.0 * 20 * 20 + 2 * 16.0 * 16 * 16);
  EXPECT_LT(double(sim.dramBytes()), 2.0 * compulsory);
}

TEST(Trace, BaselineTrafficExplodesWhenTemporariesSpill) {
  // Shrink the LLC so an N=32 box is to it what N=128 was to the paper's
  // machines. Baseline bytes/cell must grow well beyond the in-cache
  // regime's.
  const auto cfg = core::makeBaseline(ParallelGranularity::OverBoxes);
  const double small = simDramBytes(cfg, 32, 64 * 1024 * 1024);
  const double spilled = simDramBytes(cfg, 32, 512 * 1024);
  EXPECT_GT(spilled, 3.0 * small);
}

TEST(Trace, ShiftFuseMovesLessThanBaselineWhenSpilling) {
  const std::size_t llc = 512 * 1024; // force the out-of-cache regime
  const double base = simDramBytes(
      core::makeBaseline(ParallelGranularity::OverBoxes), 32, llc);
  const double fused = simDramBytes(
      core::makeShiftFuse(ParallelGranularity::OverBoxes,
                          ComponentLoop::Inside),
      32, llc);
  EXPECT_LT(fused, base) << "shift-fuse must reduce DRAM traffic";
}

TEST(Trace, OverlappedTilesApproachCompulsoryFloor) {
  const std::size_t llc = 512 * 1024;
  const auto base = core::makeBaseline(ParallelGranularity::OverBoxes);
  const auto ot = core::makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                       ParallelGranularity::WithinBox);
  const double baseBytes = simDramBytes(base, 32, llc);
  const double otBytes = simDramBytes(ot, 32, llc);
  EXPECT_LT(otBytes, 0.6 * baseBytes);
}

TEST(Trace, RejectsInvalidConfig) {
  CacheSim sim = CacheSim::makeTypical();
  auto bad = core::makeOverlapped(IntraTileSchedule::Basic, 32,
                                  ParallelGranularity::WithinBox);
  EXPECT_THROW(traceBoxEvaluation(sim, bad, 16), std::invalid_argument);
}

TEST(TrafficModel, WorkingSetFormulasOrdering) {
  // Table I ordering at N=128: baseline >> shift-fuse CLO (velocity
  // dominated) > blocked WF > overlapped tiles.
  const int n = 128;
  const double base = workingSetBytes(
      core::makeBaseline(ParallelGranularity::OverBoxes), n);
  const double wf = workingSetBytes(
      core::makeBlockedWF(16, ParallelGranularity::WithinBox,
                          ComponentLoop::Inside),
      n);
  const double ot = workingSetBytes(
      core::makeOverlapped(IntraTileSchedule::ShiftFuse, 16,
                           ParallelGranularity::WithinBox),
      n);
  EXPECT_GT(base, wf);
  EXPECT_GT(wf, ot);
}

TEST(TrafficModel, RegimeSwitchAtCacheCapacity) {
  const auto cfg = core::makeBaseline(ParallelGranularity::OverBoxes);
  const auto inCache = estimateTraffic(cfg, 16, 25 * 1024 * 1024);
  const auto spilled = estimateTraffic(cfg, 128, 25 * 1024 * 1024);
  EXPECT_TRUE(inCache.workingSetFits);
  EXPECT_FALSE(spilled.workingSetFits);
  // Paper Sec. VI-B: bandwidth demand roughly quadruples (4.9 -> 18.3
  // GB/s on the desktop). Bytes/cell must grow by a similar factor.
  EXPECT_GT(spilled.bytesPerCell, 2.5 * inCache.bytesPerCell);
  EXPECT_LT(spilled.bytesPerCell, 8.0 * inCache.bytesPerCell);
}

TEST(TrafficModel, ShiftFuseRoughlyHalvesBaselineAtLargeN) {
  // Paper: 18.3 GB/s baseline vs ~9.4/6 GB/s shift-fuse at N=128.
  const std::size_t llc = 25 * 1024 * 1024;
  const auto base = estimateTraffic(
      core::makeBaseline(ParallelGranularity::OverBoxes), 128, llc);
  const auto fused = estimateTraffic(
      core::makeShiftFuse(ParallelGranularity::OverBoxes,
                          ComponentLoop::Inside),
      128, llc);
  EXPECT_LT(fused.bytesPerCell, 0.7 * base.bytesPerCell);
  EXPECT_GT(fused.bytesPerCell, 0.05 * base.bytesPerCell);
}

TEST(TrafficModel, TiledSchedulesNearCompulsoryFloor) {
  const std::size_t llc = 25 * 1024 * 1024;
  const auto ot = estimateTraffic(
      core::makeOverlapped(IntraTileSchedule::ShiftFuse, 16,
                           ParallelGranularity::WithinBox),
      128, llc);
  // Compulsory floor: read ghosted phi0 + RMW phi1 = C*8*((N+4)^3+2N^3).
  const double floor =
      5 * 8.0 * (132.0 * 132 * 132 + 2 * 128.0 * 128 * 128);
  EXPECT_GT(ot.totalBytes, 0.9 * floor);
  EXPECT_LT(ot.totalBytes, 2.0 * floor);
}

TEST(TrafficModel, AgreesWithSimulatorWithinFactorTwo) {
  // Small-N cross-check between the closed forms and the exact simulator.
  const std::size_t llc = 512 * 1024;
  for (const auto& cfg :
       {core::makeBaseline(ParallelGranularity::OverBoxes),
        core::makeShiftFuse(ParallelGranularity::OverBoxes,
                            ComponentLoop::Inside)}) {
    const double sim = simDramBytes(cfg, 32, llc);
    const double model = estimateTraffic(cfg, 32, llc).totalBytes;
    EXPECT_LT(model, 2.5 * sim) << cfg.name();
    EXPECT_GT(model, sim / 2.5) << cfg.name();
  }
}

} // namespace
} // namespace fluxdiv::memmodel
