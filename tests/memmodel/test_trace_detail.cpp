// Invariants of the memory-trace generators beyond the traffic orderings
// of test_traffic.cpp: address-space layout, request-volume formulas, and
// the recomputation surcharge of overlapped tiles.

#include <gtest/gtest.h>

#include "kernels/exemplar.hpp"
#include "memmodel/trace.hpp"

namespace fluxdiv::memmodel {
namespace {

using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using kernels::kNumComp;

TEST(VirtualFab, AddressingMatchesFArrayBoxLayout) {
  const grid::Box b(grid::IntVect(-2, -2, -2), grid::IntVect(5, 5, 5));
  const VirtualFab vf(1000, b, kNumComp);
  EXPECT_EQ(vf.addr(-2, -2, -2, 0), 1000u);
  EXPECT_EQ(vf.addr(-1, -2, -2, 0), 1008u);          // x stride = 1 value
  EXPECT_EQ(vf.addr(-2, -1, -2, 0), 1000u + 8u * 8); // y stride = 8
  EXPECT_EQ(vf.addr(-2, -2, -1, 0), 1000u + 64u * 8);
  EXPECT_EQ(vf.addr(-2, -2, -2, 1), 1000u + 512u * 8); // comp slowest
  EXPECT_EQ(vf.bytes(kNumComp), 512u * kNumComp * 8);
}

/// An "infinite" cache makes requestBytes() an exact operation count.
CacheSim hugeSim() {
  return CacheSim({{"L1", 1ull << 30, 16, 64}});
}

TEST(Trace, BaselineRequestBytesMatchClosedForm) {
  const int n = 8;
  CacheSim sim = hugeSim();
  traceBoxEvaluation(
      sim, core::makeBaseline(ParallelGranularity::OverBoxes), n);
  // Per direction: faces = n^2 (n+1). EvalFlux1: C*(4 reads + 1 write);
  // EvalFlux2: C*(2 reads + 1 write); accumulate over cells:
  // C*(3 reads + 1 write).
  const std::int64_t faces = std::int64_t(n) * n * (n + 1);
  const std::int64_t cells = std::int64_t(n) * n * n;
  const std::int64_t perDir =
      kNumComp * (5 * faces + 3 * faces + 4 * cells);
  EXPECT_EQ(sim.requestBytes(),
            static_cast<std::uint64_t>(3 * perDir) * 8);
}

TEST(Trace, CliAddsVelocityCopyTraffic) {
  const int n = 8;
  CacheSim clo = hugeSim(), cli = hugeSim();
  traceBoxEvaluation(
      clo, core::makeBaseline(ParallelGranularity::OverBoxes), n);
  traceBoxEvaluation(
      cli,
      core::makeBaseline(ParallelGranularity::OverBoxes,
                         ComponentLoop::Inside),
      n);
  // CLI copies the velocity out (1 read + 1 write per face per dir).
  const std::int64_t faces = std::int64_t(n) * n * (n + 1);
  EXPECT_EQ(cli.requestBytes() - clo.requestBytes(),
            static_cast<std::uint64_t>(3 * 2 * faces) * 8);
}

TEST(Trace, OverlappedTilesRequestMoreThanBaseline) {
  // The recomputation surcharge: OT must *request* strictly more than the
  // same intra-tile schedule untiled (shared tile-boundary fluxes are
  // computed twice).
  const int n = 16;
  CacheSim base = hugeSim(), ot = hugeSim();
  traceBoxEvaluation(
      base, core::makeBaseline(ParallelGranularity::OverBoxes), n);
  traceBoxEvaluation(ot,
                     core::makeOverlapped(IntraTileSchedule::Basic, 4,
                                          ParallelGranularity::WithinBox),
                     n);
  EXPECT_GT(ot.requestBytes(), base.requestBytes());
  // ...but by a bounded factor (one extra face layer per tile dimension:
  // (T+1)/T per direction ~ 1.25 at T=4 for face work).
  EXPECT_LT(double(ot.requestBytes()), 1.6 * double(base.requestBytes()));
}

TEST(Trace, ShiftFuseRequestsLessThanBaseline) {
  // Fusion eliminates the flux-temporary round trips, so even the raw
  // request volume drops.
  const int n = 8;
  CacheSim base = hugeSim(), fused = hugeSim();
  traceBoxEvaluation(
      base, core::makeBaseline(ParallelGranularity::OverBoxes), n);
  traceBoxEvaluation(
      fused,
      core::makeShiftFuse(ParallelGranularity::OverBoxes,
                          ComponentLoop::Outside),
      n);
  EXPECT_LT(fused.requestBytes(), base.requestBytes());
}

TEST(Trace, BlockedWavefrontRunsAndTouchesAllCells) {
  const int n = 16;
  CacheSim sim = hugeSim();
  traceBoxEvaluation(sim,
                     core::makeBlockedWF(4, ParallelGranularity::WithinBox,
                                         ComponentLoop::Inside),
                     n);
  // Lower bound: every cell's phi1 RMW for every component.
  const std::uint64_t rmw =
      static_cast<std::uint64_t>(n) * n * n * kNumComp * 2 * 8;
  EXPECT_GT(sim.requestBytes(), rmw);
}

TEST(Trace, DeterministicReplay) {
  const auto cfg = core::makeShiftFuse(ParallelGranularity::OverBoxes);
  CacheSim a = hugeSim(), b = hugeSim();
  traceBoxEvaluation(a, cfg, 8);
  traceBoxEvaluation(b, cfg, 8);
  EXPECT_EQ(a.requestBytes(), b.requestBytes());
  EXPECT_EQ(a.dramBytes(), b.dramBytes());
}

} // namespace
} // namespace fluxdiv::memmodel
