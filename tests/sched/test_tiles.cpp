#include "sched/tiles.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fluxdiv::sched {
namespace {

TEST(TileSet, DividingTileSize) {
  TileSet tiles(Box::cube(32), 8);
  EXPECT_EQ(tiles.gridSize(), IntVect(4, 4, 4));
  EXPECT_EQ(tiles.size(), 64u);
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    EXPECT_EQ(tiles.tileBox(t).numPts(), 8 * 8 * 8);
  }
}

TEST(TileSet, NonDividingTileSizeClipsEdges) {
  TileSet tiles(Box::cube(10), 4);
  EXPECT_EQ(tiles.gridSize(), IntVect(3, 3, 3));
  // The last tile in each direction has extent 2.
  const Box last = tiles.tileBox(tiles.size() - 1);
  EXPECT_EQ(last.size(), IntVect(2, 2, 2));
  EXPECT_EQ(last.hi(), IntVect(9, 9, 9));
}

TEST(TileSet, TilesPartitionTheBoxExactly) {
  const Box box = Box::cube(12, IntVect(4, -8, 0));
  TileSet tiles(box, 5);
  std::int64_t total = 0;
  for (std::size_t a = 0; a < tiles.size(); ++a) {
    const Box ta = tiles.tileBox(a);
    EXPECT_TRUE(box.contains(ta));
    total += ta.numPts();
    for (std::size_t b = a + 1; b < tiles.size(); ++b) {
      EXPECT_FALSE(ta.intersects(tiles.tileBox(b)));
    }
  }
  EXPECT_EQ(total, box.numPts());
}

TEST(TileSet, RespectsBoxOrigin) {
  TileSet tiles(Box::cube(8, IntVect(16, 16, 16)), 4);
  EXPECT_EQ(tiles.tileBox(std::size_t(0)).lo(), IntVect(16, 16, 16));
}

TEST(TileSet, RejectsBadTileSize) {
  EXPECT_THROW(TileSet(Box::cube(8), 0), std::invalid_argument);
  EXPECT_THROW(TileSet(Box::cube(8), -2), std::invalid_argument);
}

TEST(TileSet, TileLargerThanBoxYieldsOneTile) {
  TileSet tiles(Box::cube(8), 32);
  EXPECT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles.tileBox(std::size_t(0)), Box::cube(8));
}

TEST(TileWavefronts, FrontCountAndMembership) {
  TileSet tiles(Box::cube(32), 8); // 4x4x4 tiles
  TileWavefronts fronts(tiles);
  EXPECT_EQ(fronts.count(), std::size_t(4 + 4 + 4 - 2));
  // First and last fronts hold exactly the corner tiles.
  EXPECT_EQ(fronts.front(0).size(), 1u);
  EXPECT_EQ(fronts.front(fronts.count() - 1).size(), 1u);
  // All tiles appear exactly once.
  std::vector<int> seen(tiles.size(), 0);
  for (std::size_t w = 0; w < fronts.count(); ++w) {
    for (std::size_t t : fronts.front(w)) {
      ++seen[t];
      EXPECT_EQ(static_cast<std::size_t>(tiles.tileCoords(t).sum()), w);
    }
  }
  for (int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(TileWavefronts, FrontsAreATopologicalOrderOfTheDependences) {
  // A tile depends on its -x/-y/-z neighbors; every dependence must cross
  // from a strictly earlier front.
  TileSet tiles(Box::cube(24), 8);
  TileWavefronts fronts(tiles);
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const IntVect c = tiles.tileCoords(t);
    for (int d = 0; d < grid::SpaceDim; ++d) {
      if (c[d] > 0) {
        const IntVect dep = c - IntVect::basis(d);
        EXPECT_LT(dep.sum(), c.sum());
      }
    }
  }
}

TEST(TileWavefronts, PairwiseDistinctOrthogonalCoordsWithinAFront) {
  // The property that makes the blocked-wavefront cache slots disjoint
  // (Sec. IV-C): two tiles in one front never share their orthogonal
  // coordinate pair for any direction.
  TileSet tiles(Box::cube(32), 8);
  TileWavefronts fronts(tiles);
  for (std::size_t w = 0; w < fronts.count(); ++w) {
    const auto& front = fronts.front(w);
    for (std::size_t a = 0; a < front.size(); ++a) {
      for (std::size_t b = a + 1; b < front.size(); ++b) {
        const IntVect ca = tiles.tileCoords(front[a]);
        const IntVect cb = tiles.tileCoords(front[b]);
        for (int d = 0; d < grid::SpaceDim; ++d) {
          const int o1 = (d + 1) % 3;
          const int o2 = (d + 2) % 3;
          EXPECT_FALSE(ca[o1] == cb[o1] && ca[o2] == cb[o2]);
        }
      }
    }
  }
}

TEST(TileWavefronts, PencilTileSetHasLinearFronts) {
  // Pencil tiles (full x): the tile grid is 1 x 4 x 4, so fronts follow
  // ty + tz and the widest front has min(4,4) tiles.
  TileSet tiles(Box::cube(32), IntVect(32, 8, 8));
  EXPECT_EQ(tiles.gridSize(), IntVect(1, 4, 4));
  TileWavefronts fronts(tiles);
  EXPECT_EQ(fronts.count(), std::size_t(1 + 4 + 4 - 2));
  std::size_t widest = 0;
  for (std::size_t w = 0; w < fronts.count(); ++w) {
    widest = std::max(widest, fronts.front(w).size());
  }
  EXPECT_EQ(widest, 4u);
}

TEST(TileTraversal, LexicographicIsIdentity) {
  TileSet tiles(Box::cube(16), 4);
  const auto perm = tileTraversal(tiles, TileOrder::Lexicographic);
  for (std::size_t t = 0; t < perm.size(); ++t) {
    EXPECT_EQ(perm[t], t);
  }
}

TEST(TileTraversal, MortonIsAPermutation) {
  TileSet tiles(Box::cube(24), 8); // 27 tiles, non-power-of-two grid
  const auto perm = tileTraversal(tiles, TileOrder::Morton);
  std::vector<int> seen(tiles.size(), 0);
  for (std::size_t t : perm) {
    ASSERT_LT(t, tiles.size());
    ++seen[t];
  }
  for (int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(TileTraversal, MortonVisitsOctantsContiguously) {
  // For a 4x4x4 grid, Z-order visits each 2x2x2 octant's 8 tiles before
  // moving on — the spatial-locality property the order exists for.
  TileSet tiles(Box::cube(16), 4);
  const auto perm = tileTraversal(tiles, TileOrder::Morton);
  ASSERT_EQ(perm.size(), 64u);
  for (std::size_t group = 0; group < 8; ++group) {
    const IntVect first = tiles.tileCoords(perm[group * 8]);
    for (std::size_t i = 1; i < 8; ++i) {
      const IntVect c = tiles.tileCoords(perm[group * 8 + i]);
      for (int d = 0; d < grid::SpaceDim; ++d) {
        EXPECT_EQ(c[d] / 2, first[d] / 2)
            << "tile left its octant within a Morton group";
      }
    }
  }
}

} // namespace
} // namespace fluxdiv::sched
