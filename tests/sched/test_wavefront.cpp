#include "sched/tiles.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fluxdiv::sched {
namespace {

TEST(CellWavefronts, CountMatchesDiagonalRange) {
  CellWavefronts wf(Box::cube(4));
  EXPECT_EQ(wf.count(), 4 + 4 + 4 - 2);
  CellWavefronts wf2(Box(IntVect(0, 0, 0), IntVect(1, 2, 3)));
  EXPECT_EQ(wf2.count(), 2 + 3 + 4 - 2);
}

TEST(CellWavefronts, EveryCellAppearsExactlyOnce) {
  const Box box = Box::cube(5, IntVect(2, -1, 3));
  CellWavefronts wf(box);
  std::set<std::array<int, 3>> seen;
  std::int64_t total = 0;
  for (int w = 0; w < wf.count(); ++w) {
    wf.forEach(w, [&](int i, int j, int k) {
      EXPECT_TRUE(box.contains(IntVect(i, j, k)));
      EXPECT_TRUE(seen.insert({i, j, k}).second) << "duplicate cell";
      ++total;
    });
  }
  EXPECT_EQ(total, box.numPts());
}

TEST(CellWavefronts, FrontIndexIsDiagonalOffset) {
  const Box box = Box::cube(4, IntVect(10, 20, 30));
  CellWavefronts wf(box);
  for (int w = 0; w < wf.count(); ++w) {
    wf.forEach(w, [&](int i, int j, int k) {
      EXPECT_EQ((i - 10) + (j - 20) + (k - 30), w);
    });
  }
}

TEST(CellWavefronts, DependencesCrossToEarlierFronts) {
  // Fused-iteration dependences point along -x/-y/-z; those cells are on
  // front w-1, so per-front barriers order them correctly.
  const Box box = Box::cube(4);
  CellWavefronts wf(box);
  for (int w = 0; w < wf.count(); ++w) {
    wf.forEach(w, [&](int i, int j, int k) {
      for (const IntVect dep :
           {IntVect(i - 1, j, k), IntVect(i, j - 1, k),
            IntVect(i, j, k - 1)}) {
        if (box.contains(dep)) {
          EXPECT_EQ(dep.sum() - box.lo().sum(), w - 1);
        }
      }
    });
  }
}

TEST(CellWavefronts, CellsMaterializesForEach) {
  CellWavefronts wf(Box::cube(3));
  EXPECT_EQ(wf.cells(0).size(), 1u);
  EXPECT_EQ(wf.cells(3).size(), wf.cells(3).size());
  std::size_t total = 0;
  for (int w = 0; w < wf.count(); ++w) {
    total += wf.cells(w).size();
  }
  EXPECT_EQ(total, 27u);
}

TEST(CellWavefronts, MiddleFrontIsLargest) {
  CellWavefronts wf(Box::cube(6));
  std::size_t largest = 0;
  for (int w = 0; w < wf.count(); ++w) {
    largest = std::max(largest, wf.cells(w).size());
  }
  // For an N^3 box the widest diagonal plane has 3N^2/4 + O(N) cells; the
  // important property for the paper's argument is that the first and
  // last fronts are tiny compared to it (pipeline fill/drain).
  EXPECT_EQ(wf.cells(0).size(), 1u);
  EXPECT_GT(largest, 20u);
}

} // namespace
} // namespace fluxdiv::sched
