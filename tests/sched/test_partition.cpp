#include "sched/partition.hpp"

#include <gtest/gtest.h>

namespace fluxdiv::sched {
namespace {

TEST(StaticSlice, CoversRangeWithoutOverlap) {
  for (int total : {0, 1, 7, 16, 100}) {
    for (int workers : {1, 2, 3, 8, 24}) {
      std::int64_t expectedBegin = 0;
      for (int r = 0; r < workers; ++r) {
        const auto [begin, end] = staticSlice(total, workers, r);
        EXPECT_EQ(begin, expectedBegin);
        EXPECT_LE(begin, end);
        expectedBegin = end;
      }
      EXPECT_EQ(expectedBegin, total);
    }
  }
}

TEST(StaticSlice, BalancedWithinOne) {
  const int total = 103;
  const int workers = 8;
  std::int64_t smallest = total, largest = 0;
  for (int r = 0; r < workers; ++r) {
    const auto [begin, end] = staticSlice(total, workers, r);
    smallest = std::min(smallest, end - begin);
    largest = std::max(largest, end - begin);
  }
  EXPECT_LE(largest - smallest, 1);
}

TEST(ZSlab, PartitionsBoxExactly) {
  const grid::Box box = grid::Box::cube(16, grid::IntVect(0, 0, 5));
  const int workers = 5;
  std::int64_t total = 0;
  int expectedLo = box.lo(2);
  for (int r = 0; r < workers; ++r) {
    const grid::Box slab = zSlab(box, workers, r);
    ASSERT_FALSE(slab.empty());
    EXPECT_EQ(slab.lo(0), box.lo(0));
    EXPECT_EQ(slab.hi(1), box.hi(1));
    EXPECT_EQ(slab.lo(2), expectedLo);
    expectedLo = slab.hi(2) + 1;
    total += slab.numPts();
  }
  EXPECT_EQ(expectedLo, box.hi(2) + 1);
  EXPECT_EQ(total, box.numPts());
}

TEST(ZSlab, MoreWorkersThanPlanesYieldsEmptySlabs) {
  const grid::Box box = grid::Box::cube(2);
  int nonEmpty = 0;
  for (int r = 0; r < 8; ++r) {
    if (!zSlab(box, 8, r).empty()) {
      ++nonEmpty;
    }
  }
  EXPECT_EQ(nonEmpty, 2);
}

TEST(ZSlab, SingleWorkerGetsWholeBox) {
  const grid::Box box = grid::Box::cube(8);
  EXPECT_EQ(zSlab(box, 1, 0), box);
}

} // namespace
} // namespace fluxdiv::sched
