#include "kernels/gradient.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::kernels {
namespace {

using grid::Box;
using grid::FArrayBox;
using grid::IntVect;
using grid::Real;

TEST(CentralDeriv4, ExactForCubic) {
  auto p = [](double x) { return x * x * x - 4.0 * x + 2.0; };
  std::vector<Real> col(9);
  for (int i = 0; i < 9; ++i) {
    col[static_cast<std::size_t>(i)] = p(i);
  }
  // Derivative 3x^2 - 4 at x = 4.
  EXPECT_NEAR(centralDeriv4(col.data() + 4, 1, 1.0), 3.0 * 16 - 4.0,
              1e-11);
}

TEST(CentralDeriv4, ZeroForConstant) {
  std::vector<Real> col(8, 5.5);
  EXPECT_EQ(centralDeriv4(col.data() + 3, 1, 2.0), 0.0);
}

TEST(Gradient, LinearFieldHasConstantGradient) {
  const Box valid = Box::cube(6);
  FArrayBox phi(valid.grow(kNumGhost), 1);
  forEachCell(phi.box(), [&](int i, int j, int k) {
    phi(i, j, k, 0) = 2.0 * i - 3.0 * j + 0.5 * k;
  });
  FArrayBox grad(valid, 3);
  gradient(phi, grad, valid, 0);
  forEachCell(valid, [&](int i, int j, int k) {
    ASSERT_NEAR(grad(i, j, k, 0), 2.0, 1e-12);
    ASSERT_NEAR(grad(i, j, k, 1), -3.0, 1e-12);
    ASSERT_NEAR(grad(i, j, k, 2), 0.5, 1e-12);
  });
}

TEST(Gradient, InvDxScales) {
  const Box valid = Box::cube(4);
  FArrayBox phi(valid.grow(kNumGhost), 1);
  forEachCell(phi.box(), [&](int i, int j, int k) {
    phi(i, j, k, 0) = 1.0 * i;
  });
  FArrayBox grad(valid, 3);
  gradient(phi, grad, valid, 0, /*invDx=*/8.0);
  EXPECT_NEAR(grad(1, 1, 1, 0), 8.0, 1e-12);
}

TEST(Gradient, FourthOrderConvergenceOnSine) {
  auto errorAt = [](int n) {
    const double h = 1.0 / n;
    const double twoPi = 2 * std::numbers::pi;
    const Box valid = Box::cube(n);
    FArrayBox phi(valid.grow(kNumGhost), 1);
    forEachCell(phi.box(), [&](int i, int j, int k) {
      phi(i, j, k, 0) = std::sin(twoPi * (i + 0.5) * h);
    });
    FArrayBox grad(valid, 3);
    gradient(phi, grad, valid, 0, 1.0 / h);
    double worst = 0.0;
    forEachCell(valid, [&](int i, int j, int k) {
      const double exact = twoPi * std::cos(twoPi * (i + 0.5) * h);
      worst = std::max(worst, std::abs(grad(i, j, k, 0) - exact));
    });
    return worst;
  };
  const double e1 = errorAt(16);
  const double e2 = errorAt(32);
  EXPECT_GT(std::log2(e1 / e2), 3.6);
}

TEST(Gradient, AosVariantMatchesSoA) {
  const Box valid = Box::cube(6);
  FArrayBox phi(valid.grow(kNumGhost), kNumComp);
  initializeExemplar(phi, valid);
  FArrayBox gradSoA(valid, 3);
  gradient(phi, gradSoA, valid, 2);

  AosFab aosPhi(phi.box(), kNumComp);
  packAos(phi, aosPhi, phi.box());
  AosFab gradAos(valid, 3);
  aosGradient(aosPhi, gradAos, valid, 2);
  forEachCell(valid, [&](int i, int j, int k) {
    for (int d = 0; d < 3; ++d) {
      ASSERT_EQ(gradAos(i, j, k, d), gradSoA(i, j, k, d));
    }
  });
}

} // namespace
} // namespace fluxdiv::kernels
