// Equivalence of the vectorized pencil kernels (kernels/pencil.hpp)
// against the scalar exemplar kernels they replace, on randomized boxes,
// for all three stencil directions and both allocation pitches. The
// pencils perform literally the same per-element expressions, so the
// expected difference is zero; the assertions allow a couple of ULPs so
// the contract survives compilers that contract or vectorize the two
// paths differently.

#include "kernels/pencil.hpp"

#include <bit>
#include <cstdint>
#include <limits>
#include <random>

#include <gtest/gtest.h>

#include "grid/farraybox.hpp"

namespace fluxdiv::kernels::pencil {
namespace {

using grid::Box;
using grid::FabIndexer;
using grid::FArrayBox;
using grid::IntVect;
using grid::Pitch;

constexpr std::int64_t kMaxUlps = 2;

std::int64_t orderedBits(Real x) {
  const auto i = std::bit_cast<std::int64_t>(x);
  return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
}

std::int64_t ulpDiff(Real a, Real b) {
  if (a == b) {
    return 0;
  }
  const std::int64_t d = orderedBits(a) - orderedBits(b);
  return d < 0 ? -d : d;
}

#define EXPECT_ULP_EQ(a, b)                                                  \
  EXPECT_LE(ulpDiff((a), (b)), kMaxUlps) << (a) << " vs " << (b)

/// A reproducibly random box with modest extents and a nonzero origin.
Box randomBox(std::mt19937& rng) {
  std::uniform_int_distribution<int> lo(-4, 4);
  std::uniform_int_distribution<int> len(3, 13);
  const IntVect l(lo(rng), lo(rng), lo(rng));
  return {l, l + IntVect(len(rng), len(rng), len(rng)) - IntVect::unit(1)};
}

void fillRandom(FArrayBox& f, std::mt19937& rng) {
  std::uniform_real_distribution<Real> dist(-1.0, 1.0);
  for (int c = 0; c < f.nComp(); ++c) {
    grid::forEachCell(f.box(), [&](int i, int j, int k) {
      f(i, j, k, c) = dist(rng);
    });
  }
}

class PencilKernels : public ::testing::TestWithParam<Pitch> {};

TEST_P(PencilKernels, EvalFlux1MatchesScalarInAllDirections) {
  std::mt19937 rng(12345);
  for (int trial = 0; trial < 4; ++trial) {
    const Box cells = randomBox(rng);
    FArrayBox phi(cells.grow(kNumGhost), 1, GetParam());
    fillRandom(phi, rng);
    const FabIndexer ip = phi.indexer();
    const Real* p = phi.dataPtr(0);
    for (int d = 0; d < grid::SpaceDim; ++d) {
      const Box fb = cells.faceBox(d);
      FArrayBox out(fb, 1, GetParam());
      const FabIndexer ix = out.indexer();
      const std::int64_t s = ip.stride(d);
      const int nx = fb.size(0);
      for (int k = fb.lo(2); k <= fb.hi(2); ++k) {
        for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
          evalFlux1Pencil(p + ip(fb.lo(0), j, k), s, nx,
                          out.dataPtr(0) + ix(fb.lo(0), j, k));
        }
      }
      grid::forEachCell(fb, [&](int i, int j, int k) {
        EXPECT_ULP_EQ(out(i, j, k, 0), evalFlux1(p + ip(i, j, k), s))
            << "dir " << d << " at " << i << ',' << j << ',' << k;
      });
    }
  }
}

TEST_P(PencilKernels, FaceFluxMatchesScalarIncludingAliasedInputs) {
  std::mt19937 rng(23456);
  const Box cells = randomBox(rng);
  FArrayBox phi(cells.grow(kNumGhost), 2, GetParam());
  fillRandom(phi, rng);
  const FabIndexer ip = phi.indexer();
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const std::int64_t s = ip.stride(d);
    const Box fb = cells.faceBox(d);
    const int nx = fb.size(0);
    std::vector<Real> row(static_cast<std::size_t>(nx));
    for (int k = fb.lo(2); k <= fb.hi(2); ++k) {
      for (int j = fb.lo(1); j <= fb.hi(1); ++j) {
        const std::int64_t a = ip(fb.lo(0), j, k);
        // Distinct component columns...
        faceFluxPencil(phi.dataPtr(0) + a, phi.dataPtr(1) + a, s, nx,
                       row.data());
        for (int ii = 0; ii < nx; ++ii) {
          EXPECT_ULP_EQ(row[static_cast<std::size_t>(ii)],
                        faceFlux(phi.dataPtr(0) + a + ii,
                                 phi.dataPtr(1) + a + ii, s));
        }
        // ...and the aliased case (component fluxing itself), which the
        // CLI executors hit when c == velocityComp(d).
        faceFluxPencil(phi.dataPtr(1) + a, phi.dataPtr(1) + a, s, nx,
                       row.data());
        for (int ii = 0; ii < nx; ++ii) {
          EXPECT_ULP_EQ(row[static_cast<std::size_t>(ii)],
                        faceFlux(phi.dataPtr(1) + a + ii,
                                 phi.dataPtr(1) + a + ii, s));
        }
      }
    }
  }
}

TEST_P(PencilKernels, FluxAndSquareAndMulMatchScalar) {
  std::mt19937 rng(34567);
  std::uniform_real_distribution<Real> dist(-1.0, 1.0);
  const int n = 37;
  std::vector<Real> phiRow(n), velRow(n), a(n), b(n);
  for (int i = 0; i < n; ++i) {
    phiRow[static_cast<std::size_t>(i)] = dist(rng);
    velRow[static_cast<std::size_t>(i)] = dist(rng);
  }
  a = phiRow;
  fluxPencil(a.data(), velRow.data(), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_ULP_EQ(a[static_cast<std::size_t>(i)],
                  evalFlux2(phiRow[static_cast<std::size_t>(i)],
                            velRow[static_cast<std::size_t>(i)]));
  }
  b = velRow;
  fluxSquarePencil(b.data(), n);
  for (int i = 0; i < n; ++i) {
    EXPECT_ULP_EQ(b[static_cast<std::size_t>(i)],
                  evalFlux2(velRow[static_cast<std::size_t>(i)],
                            velRow[static_cast<std::size_t>(i)]));
  }

  const Box cells = randomBox(rng);
  FArrayBox phi(cells.grow(kNumGhost), 1, GetParam());
  fillRandom(phi, rng);
  const FabIndexer ip = phi.indexer();
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const std::int64_t s = ip.stride(d);
    const Box fb = cells.faceBox(d);
    const int nx = fb.size(0);
    std::vector<Real> vel(static_cast<std::size_t>(nx));
    std::vector<Real> outRow(static_cast<std::size_t>(nx));
    for (auto& v : vel) {
      v = dist(rng);
    }
    const std::int64_t base = ip(fb.lo(0), fb.lo(1), fb.lo(2));
    evalFlux1MulPencil(phi.dataPtr(0) + base, s, vel.data(), nx,
                       outRow.data());
    for (int ii = 0; ii < nx; ++ii) {
      EXPECT_ULP_EQ(
          outRow[static_cast<std::size_t>(ii)],
          evalFlux2(evalFlux1(phi.dataPtr(0) + base + ii, s),
                    vel[static_cast<std::size_t>(ii)]));
    }
  }
}

TEST(PencilKernelsFlat, AccumulateMatchesScalarForUnitAndWideStrides) {
  std::mt19937 rng(45678);
  std::uniform_real_distribution<Real> dist(-1.0, 1.0);
  const int n = 29;
  for (std::int64_t stride : {std::int64_t{1}, std::int64_t{40},
                              std::int64_t{40 * 17}}) {
    std::vector<Real> flux(static_cast<std::size_t>(n + stride));
    for (auto& v : flux) {
      v = dist(rng);
    }
    std::vector<Real> outP(static_cast<std::size_t>(n), 0.5);
    std::vector<Real> outS(outP);
    accumulatePencil(flux.data(), stride, n, 0.25, outP.data());
    for (int i = 0; i < n; ++i) {
      outS[static_cast<std::size_t>(i)] +=
          0.25 * (flux[static_cast<std::size_t>(i + stride)] -
                  flux[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < n; ++i) {
      EXPECT_ULP_EQ(outP[static_cast<std::size_t>(i)],
                    outS[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(PencilKernelsFlat, FusedFaceDiffMatchesScalarCarryChain) {
  std::mt19937 rng(56789);
  std::uniform_real_distribution<Real> dist(-1.0, 1.0);
  const int n = 23;
  const int rows = 5;
  std::vector<Real> carryP(static_cast<std::size_t>(n));
  std::vector<Real> carryS(static_cast<std::size_t>(n));
  std::vector<Real> outP(static_cast<std::size_t>(n * rows), 0.0);
  std::vector<Real> outS(outP);
  for (int i = 0; i < n; ++i) {
    carryP[static_cast<std::size_t>(i)] = dist(rng);
  }
  carryS = carryP;
  for (int r = 0; r < rows; ++r) {
    std::vector<Real> hi(static_cast<std::size_t>(n));
    for (auto& v : hi) {
      v = dist(rng);
    }
    Real* op = outP.data() + static_cast<std::size_t>(r) * n;
    Real* os = outS.data() + static_cast<std::size_t>(r) * n;
    fusedFaceDiffPencil(hi.data(), carryP.data(), n, -0.5, op);
    for (int i = 0; i < n; ++i) {
      os[i] += -0.5 * (hi[static_cast<std::size_t>(i)] -
                       carryS[static_cast<std::size_t>(i)]);
      carryS[static_cast<std::size_t>(i)] = hi[static_cast<std::size_t>(i)];
    }
  }
  for (std::size_t i = 0; i < outP.size(); ++i) {
    EXPECT_ULP_EQ(outP[i], outS[i]);
  }
  for (std::size_t i = 0; i < carryP.size(); ++i) {
    EXPECT_EQ(carryP[i], carryS[i]);
  }
}

TEST(PencilKernelsFlat, CopyPencilCopies) {
  std::vector<Real> src{1.0, -2.0, 3.5, 0.0, 7.25};
  std::vector<Real> dst(src.size(), -1.0);
  copyPencil(src.data(), static_cast<int>(src.size()), dst.data());
  EXPECT_EQ(src, dst);
}

TEST(PencilKernelsFlat, ConfigReportsStorageContract) {
  const PencilConfig cfg = pencilConfig();
  EXPECT_EQ(cfg.simdDoubles, grid::kSimdDoubles);
  EXPECT_EQ(cfg.alignment, grid::kFabAlignment);
#if defined(_OPENMP)
  EXPECT_TRUE(cfg.ompSimd);
#endif
}

INSTANTIATE_TEST_SUITE_P(BothPitches, PencilKernels,
                         ::testing::Values(Pitch::Padded, Pitch::Dense),
                         [](const auto& info) {
                           return info.param == Pitch::Padded ? "Padded"
                                                              : "Dense";
                         });

} // namespace
} // namespace fluxdiv::kernels::pencil
