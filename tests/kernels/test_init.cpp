#include "kernels/init.hpp"

#include <gtest/gtest.h>

#include "kernels/exemplar.hpp"

namespace fluxdiv::kernels {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::FArrayBox;
using grid::IntVect;
using grid::LevelData;
using grid::ProblemDomain;
using grid::Real;

TEST(ExemplarValue, StrictlyPositiveAndBounded) {
  const Box dom = Box::cube(16);
  for (int c = 0; c < kNumComp; ++c) {
    forEachCell(dom, [&](int i, int j, int k) {
      const Real v = exemplarValue(i, j, k, c, dom);
      ASSERT_GT(v, 0.5);
      ASSERT_LT(v, 1.5);
    });
  }
}

TEST(ExemplarValue, ComponentsDiffer) {
  const Box dom = Box::cube(8);
  EXPECT_NE(exemplarValue(1, 2, 3, 0, dom), exemplarValue(1, 2, 3, 1, dom));
}

TEST(InitializeExemplar, GhostsHoldPeriodicImagesAfterExchange) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(16)), 8);
  LevelData phi(dbl, kNumComp, kNumGhost);
  initializeExemplar(phi);
  const Box dom = dbl.domain().box();
  // Low-side ghost of box 0 equals the domain's far side value.
  EXPECT_DOUBLE_EQ(phi[0](-1, 0, 0, 0), exemplarValue(15, 0, 0, 0, dom));
  EXPECT_DOUBLE_EQ(phi[0](-2, -1, -2, 3),
                   exemplarValue(14, 15, 14, 3, dom));
}

TEST(InitializeExemplar, IndependentOfDecomposition) {
  // The same global field regardless of box size — the invariant behind
  // all equal-work cross-box-size comparisons.
  ProblemDomain dom(Box::cube(16));
  LevelData a(DisjointBoxLayout(dom, 16), kNumComp, kNumGhost);
  LevelData b(DisjointBoxLayout(dom, 4), kNumComp, kNumGhost);
  initializeExemplar(a);
  initializeExemplar(b);
  EXPECT_EQ(LevelData::maxAbsDiffValid(a, b), 0.0);
}

TEST(InitializeExemplar, StandaloneFabMatchesLevelFill) {
  const Box dom = Box::cube(8);
  DisjointBoxLayout dbl(ProblemDomain(dom), 8);
  LevelData level(dbl, kNumComp, kNumGhost);
  initializeExemplar(level);

  FArrayBox fab(Box::cube(8).grow(kNumGhost), kNumComp);
  initializeExemplar(fab, dom);
  EXPECT_EQ(FArrayBox::maxAbsDiff(level[0], fab, fab.box()), 0.0);
}

} // namespace
} // namespace fluxdiv::kernels
