#include "kernels/laplacian.hpp"

#include <gtest/gtest.h>

#include "grid/norms.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::kernels {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::FArrayBox;
using grid::LevelData;
using grid::ProblemDomain;
using grid::Real;

TEST(Laplacian, ZeroForLinearField) {
  const Box valid = Box::cube(6);
  FArrayBox phi(valid.grow(1), 2);
  forEachCell(phi.box(), [&](int i, int j, int k) {
    phi(i, j, k, 0) = 3.0 * i - j + 2.0 * k;
    phi(i, j, k, 1) = -i + 4.0 * j;
  });
  FArrayBox out(valid, 2);
  addLaplacian(phi, out, valid, 1.0);
  forEachCell(valid, [&](int i, int j, int k) {
    ASSERT_NEAR(out(i, j, k, 0), 0.0, 1e-12);
    ASSERT_NEAR(out(i, j, k, 1), 0.0, 1e-12);
  });
}

TEST(Laplacian, ExactForQuadratic) {
  // Lap(x^2 + 2 y^2 - z^2) = 2 + 4 - 2 = 4 exactly (the 7-point stencil
  // is exact on quadratics).
  const Box valid = Box::cube(6);
  FArrayBox phi(valid.grow(1), 1);
  forEachCell(phi.box(), [&](int i, int j, int k) {
    phi(i, j, k, 0) = 1.0 * i * i + 2.0 * j * j - 1.0 * k * k;
  });
  FArrayBox out(valid, 1);
  addLaplacian(phi, out, valid, 1.0);
  forEachCell(valid, [&](int i, int j, int k) {
    ASSERT_NEAR(out(i, j, k, 0), 4.0, 1e-11);
  });
}

TEST(Laplacian, AccumulatesWithScale) {
  const Box valid = Box::cube(4);
  FArrayBox phi(valid.grow(1), 1);
  forEachCell(phi.box(), [&](int i, int j, int k) {
    phi(i, j, k, 0) = i * i;
  });
  FArrayBox out(valid, 1);
  out.setVal(10.0);
  addLaplacian(phi, out, valid, -0.5);
  EXPECT_NEAR(out(1, 1, 1, 0), 10.0 - 0.5 * 2.0, 1e-12);
}

TEST(Laplacian, SumsToZeroOnPeriodicLevel) {
  // The dissipation term must not break conservation: the 7-point
  // Laplacian telescopes to zero over a periodic level.
  ProblemDomain dom(Box::cube(12));
  DisjointBoxLayout dbl(dom, 6);
  LevelData phi(dbl, kNumComp, kNumGhost);
  LevelData out(dbl, kNumComp, kNumGhost);
  initializeExemplar(phi);
  addLaplacian(phi, out, 0.7);
  for (int c = 0; c < kNumComp; ++c) {
    EXPECT_NEAR(levelSum(out, c), 0.0, 1e-10) << "component " << c;
  }
}

TEST(Laplacian, SmoothsHighFrequencyNoise) {
  // One explicit diffusion step u += nu Lap(u) with stable nu must reduce
  // the L2 norm of a zero-mean checkerboard.
  ProblemDomain dom(Box::cube(8));
  DisjointBoxLayout dbl(dom, 8);
  LevelData u(dbl, 1, 1);
  forEachCell(dbl.box(0), [&](int i, int j, int k) {
    u[0](i, j, k, 0) = ((i + j + k) % 2 == 0) ? 1.0 : -1.0;
  });
  u.exchange();
  const Real before = levelNormL2(u, 0);
  LevelData lap(dbl, 1, 1);
  addLaplacian(u, lap, 1.0);
  for (std::size_t b = 0; b < u.size(); ++b) {
    u[b].plus(lap[b], 0.05, u.validBox(b));
  }
  EXPECT_LT(levelNormL2(u, 0), before);
}

} // namespace
} // namespace fluxdiv::kernels
