#include "kernels/layout.hpp"

#include <gtest/gtest.h>

#include "kernels/init.hpp"
#include "kernels/reference.hpp"

namespace fluxdiv::kernels {
namespace {

TEST(AosFab, InterleavedIndexing) {
  AosFab fab(Box::cube(4), 3);
  EXPECT_EQ(fab.index(0, 0, 0, 0), 0);
  EXPECT_EQ(fab.index(0, 0, 0, 1), 1); // components adjacent
  EXPECT_EQ(fab.index(1, 0, 0, 0), 3); // x stride = C
  EXPECT_EQ(fab.index(0, 1, 0, 0), 12);
  EXPECT_EQ(fab.index(0, 0, 1, 0), 48);
  EXPECT_EQ(fab.size(), 4u * 4 * 4 * 3);
}

TEST(AosFab, RespectsBoxOrigin) {
  AosFab fab(Box::cube(4, IntVect(-2, -2, -2)), 2);
  EXPECT_EQ(fab.index(-2, -2, -2, 0), 0);
  fab(-1, 0, 1, 1) = 9.0;
  EXPECT_EQ(fab(-1, 0, 1, 1), 9.0);
}

TEST(Layout, PackUnpackRoundTrip) {
  const Box region = Box::cube(6);
  FArrayBox soa(region.grow(1), kNumComp);
  initializeExemplar(soa, region);
  AosFab aos(region.grow(1), kNumComp);
  packAos(soa, aos, soa.box());

  FArrayBox back(region.grow(1), kNumComp);
  unpackAos(aos, back, soa.box());
  EXPECT_EQ(FArrayBox::maxAbsDiff(soa, back, soa.box()), 0.0);
}

TEST(Layout, PackPreservesValuesAtInterleavedPositions) {
  const Box region = Box::cube(3);
  FArrayBox soa(region, 2);
  soa(1, 2, 0, 0) = 5.0;
  soa(1, 2, 0, 1) = -6.0;
  AosFab aos(region, 2);
  packAos(soa, aos, region);
  EXPECT_EQ(aos(1, 2, 0, 0), 5.0);
  EXPECT_EQ(aos(1, 2, 0, 1), -6.0);
  // Adjacent in memory:
  EXPECT_EQ(aos.index(1, 2, 0, 1) - aos.index(1, 2, 0, 0), 1);
}

TEST(Layout, AosFluxDivMatchesReferenceKernel) {
  // The layout ablation's correctness anchor: repack -> compute on AoS ->
  // unpack must equal the component-major reference exactly.
  const Box valid = Box::cube(8);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  initializeExemplar(phi0, valid);
  FArrayBox expected(valid, kNumComp);
  referenceFluxDiv(phi0, expected, valid);

  AosFab aosPhi0(phi0.box(), kNumComp);
  packAos(phi0, aosPhi0, phi0.box());
  AosFab aosPhi1(valid, kNumComp);
  aosFluxDiv(aosPhi0, aosPhi1, valid);

  FArrayBox actual(valid, kNumComp);
  unpackAos(aosPhi1, actual, valid);
  EXPECT_LT(FArrayBox::maxAbsDiff(expected, actual, valid), 1e-13);
}

TEST(Layout, AosFluxDivScale) {
  const Box valid = Box::cube(4);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  initializeExemplar(phi0, valid);
  AosFab aosPhi0(phi0.box(), kNumComp);
  packAos(phi0, aosPhi0, phi0.box());
  AosFab once(valid, kNumComp), scaled(valid, kNumComp);
  aosFluxDiv(aosPhi0, once, valid, 1.0);
  aosFluxDiv(aosPhi0, scaled, valid, -2.0);
  forEachCell(valid, [&](int i, int j, int k) {
    for (int c = 0; c < kNumComp; ++c) {
      ASSERT_NEAR(scaled(i, j, k, c), -2.0 * once(i, j, k, c), 1e-13);
    }
  });
}

} // namespace
} // namespace fluxdiv::kernels
