#include "kernels/exemplar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace fluxdiv::kernels {
namespace {

TEST(EvalFlux1, ReproducesHandComputedWeights) {
  // Face between cells 1 and 2 of the column {a,b,c,d}:
  // 7/12 (b + c) - 1/12 (a + d).
  const std::vector<Real> col = {3.0, 5.0, 7.0, 11.0};
  const Real expect = 7.0 / 12.0 * (5.0 + 7.0) - 1.0 / 12.0 * (3.0 + 11.0);
  EXPECT_DOUBLE_EQ(evalFlux1(col.data() + 2, 1), expect);
}

TEST(EvalFlux1, ExactForConstantField) {
  const std::vector<Real> col(8, 4.25);
  EXPECT_DOUBLE_EQ(evalFlux1(col.data() + 2, 1), 4.25);
  EXPECT_DOUBLE_EQ(evalFlux1(col.data() + 4, 2), 4.25);
}

TEST(EvalFlux1, ExactForLinearField) {
  // The 4th-order average of a linear cell-average profile equals the
  // face value exactly: for phi_i = i, the face between cells 1 and 2 is
  // at 1.5.
  std::vector<Real> col(8);
  for (int i = 0; i < 8; ++i) {
    col[static_cast<std::size_t>(i)] = i;
  }
  EXPECT_DOUBLE_EQ(evalFlux1(col.data() + 2, 1), 1.5);
}

TEST(EvalFlux1, ExactForCubicCellAverages) {
  // Eq. 6 is the McCorquodale-Colella 4th-order face interpolation: it
  // maps cell *averages* to face point values exactly for cubics. Cells
  // are [i, i+1]; the face between cells 1 and 2 sits at x = 2.
  auto primitive = [](double x) {
    // antiderivative of p(x) = x^3 - 2x + 1
    return 0.25 * x * x * x * x - x * x + x;
  };
  auto p = [](double x) { return x * x * x - 2.0 * x + 1.0; };
  std::vector<Real> avg(6);
  for (int i = 0; i < 6; ++i) {
    avg[static_cast<std::size_t>(i)] = primitive(i + 1.0) - primitive(i);
  }
  EXPECT_NEAR(evalFlux1(avg.data() + 2, 1), p(2.0), 1e-12);
}

TEST(EvalFlux1, StrideSelectsColumnDirection) {
  // A field varying only in the strided direction must see the stencil.
  std::vector<Real> plane(64, 0.0);
  const int stride = 8;
  for (int r = 0; r < 8; ++r) {
    for (int i = 0; i < 8; ++i) {
      plane[static_cast<std::size_t>(r * stride + i)] = r;
    }
  }
  // Column along the stride at row 3, any x: face between rows 2 and 3.
  EXPECT_DOUBLE_EQ(evalFlux1(plane.data() + 3 * stride + 5, stride), 2.5);
}

TEST(EvalFlux1, FourthOrderConvergenceOnSmoothField) {
  // Refine a sine profile and verify the face-interpolation error drops
  // ~16x per refinement (order 4) when fed cell point samples.
  auto errorAt = [](int n) {
    const double h = 1.0 / n;
    const double twoPi = 2 * std::numbers::pi;
    std::vector<Real> col(static_cast<std::size_t>(n) + 4);
    for (int i = 0; i < n + 4; ++i) {
      // Exact cell average of sin over [x_lo, x_lo + h], 2 ghost cells.
      const double xlo = (i - 2) * h;
      col[static_cast<std::size_t>(i)] =
          (std::cos(twoPi * xlo) - std::cos(twoPi * (xlo + h))) /
          (twoPi * h);
    }
    double worst = 0.0;
    for (int f = 0; f <= n; ++f) {
      const double xf = f * h;
      const double approx = evalFlux1(col.data() + 2 + f, 1);
      worst = std::max(worst,
                       std::abs(approx - std::sin(2 * std::numbers::pi * xf)));
    }
    return worst;
  };
  const double e1 = errorAt(32);
  const double e2 = errorAt(64);
  const double rate = std::log2(e1 / e2);
  EXPECT_GT(rate, 3.7) << "expected ~4th-order convergence, e1=" << e1
                       << " e2=" << e2;
}

TEST(EvalFlux2, IsPlainProduct) {
  EXPECT_DOUBLE_EQ(evalFlux2(3.0, -2.0), -6.0);
  EXPECT_DOUBLE_EQ(evalFlux2(0.0, 123.0), 0.0);
}

TEST(FaceFlux, ComposesTheTwoStages) {
  const std::vector<Real> c = {1.0, 2.0, 3.0, 4.0};
  const std::vector<Real> v = {2.0, 2.0, 2.0, 2.0};
  const Real phi = evalFlux1(c.data() + 2, 1);
  EXPECT_DOUBLE_EQ(faceFlux(c.data() + 2, v.data() + 2, 1),
                   evalFlux2(phi, 2.0));
}

TEST(Constants, MatchThePaper) {
  EXPECT_EQ(kNumComp, 5);  // <rho, u, v, w, e>
  EXPECT_EQ(kNumGhost, 2); // 4-point face stencil reach
  EXPECT_EQ(velocityComp(0), 1);
  EXPECT_EQ(velocityComp(1), 2);
  EXPECT_EQ(velocityComp(2), 3);
}

} // namespace
} // namespace fluxdiv::kernels
