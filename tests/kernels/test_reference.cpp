#include "kernels/reference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::kernels {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::FArrayBox;
using grid::IntVect;
using grid::LevelData;
using grid::ProblemDomain;
using grid::Real;

TEST(Reference, ZeroForConstantField) {
  // Constant phi -> constant fluxes -> zero divergence.
  const Box valid = Box::cube(6);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  FArrayBox phi1(valid, kNumComp);
  phi0.setVal(1.7);
  referenceFluxDiv(phi0, phi1, valid);
  for (int c = 0; c < kNumComp; ++c) {
    forEachCell(valid, [&](int i, int j, int k) {
      ASSERT_NEAR(phi1(i, j, k, c), 0.0, 1e-14);
    });
  }
}

TEST(Reference, HandComputedSingleCell1DProfile) {
  // phi varies linearly in x only, all components: phi = x. Face averages
  // are exact (x at the face); the velocity component u = x too, so
  // flux(face f) = f * f and the x-difference at cell i is
  // (i+1)^2 - i^2 = 2i + 1. The y/z faces see constant columns, and both
  // y/z faces of a cell carry identical fluxes, so they cancel.
  const Box valid = Box::cube(4);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  FArrayBox phi1(valid, kNumComp);
  forEachCell(phi0.box(), [&](int i, int j, int k) {
    for (int c = 0; c < kNumComp; ++c) {
      phi0(i, j, k, c) = i + 0.5; // cell-centered coordinate
    }
  });
  referenceFluxDiv(phi0, phi1, valid);
  forEachCell(valid, [&](int i, int j, int k) {
    const Real expected = (i + 1.0) * (i + 1.0) - Real(i) * i;
    for (int c = 0; c < kNumComp; ++c) {
      ASSERT_NEAR(phi1(i, j, k, c), expected, 1e-12)
          << "cell " << i << ',' << j << ',' << k << " comp " << c;
    }
  });
}

TEST(Reference, ScaleParameter) {
  const Box valid = Box::cube(4);
  const Box dom = valid;
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  initializeExemplar(phi0, dom);
  FArrayBox a(valid, kNumComp), b(valid, kNumComp);
  referenceFluxDiv(phi0, a, valid, 1.0);
  referenceFluxDiv(phi0, b, valid, -0.5);
  forEachCell(valid, [&](int i, int j, int k) {
    for (int c = 0; c < kNumComp; ++c) {
      ASSERT_NEAR(b(i, j, k, c), -0.5 * a(i, j, k, c), 1e-13);
    }
  });
}

TEST(Reference, AccumulatesIntoExistingValues) {
  const Box valid = Box::cube(4);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  initializeExemplar(phi0, valid);
  FArrayBox once(valid, kNumComp), twice(valid, kNumComp);
  referenceFluxDiv(phi0, once, valid);
  referenceFluxDiv(phi0, twice, valid);
  referenceFluxDiv(phi0, twice, valid);
  forEachCell(valid, [&](int i, int j, int k) {
    for (int c = 0; c < kNumComp; ++c) {
      ASSERT_NEAR(twice(i, j, k, c), 2.0 * once(i, j, k, c), 1e-12);
    }
  });
}

TEST(Reference, ConservationOnPeriodicLevel) {
  // The finite-volume property of Sec. II: with periodic BCs every flux
  // leaves one cell and enters its neighbor, so the global sum of the
  // accumulated divergence is zero for every component.
  ProblemDomain dom(Box::cube(12));
  DisjointBoxLayout dbl(dom, 4);
  LevelData phi0(dbl, kNumComp, kNumGhost);
  LevelData phi1(dbl, kNumComp, kNumGhost);
  initializeExemplar(phi0);
  referenceFluxDiv(phi0, phi1);
  for (int c = 0; c < kNumComp; ++c) {
    Real total = 0.0;
    for (std::size_t b = 0; b < phi1.size(); ++b) {
      total += phi1[b].sum(phi1.validBox(b), c);
    }
    EXPECT_NEAR(total, 0.0, 1e-9) << "component " << c;
  }
}

TEST(Reference, NaiveIndexingVariantMatchesPointerVariant) {
  // The Sec. III-C implementation note: accessor-based indexing computes
  // the same values as the pointer-cached kernels (only slower).
  const Box valid = Box::cube(6);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  initializeExemplar(phi0, valid);
  FArrayBox fast(valid, kNumComp), naive(valid, kNumComp);
  referenceFluxDiv(phi0, fast, valid, 1.5);
  referenceFluxDivNaive(phi0, naive, valid, 1.5);
  EXPECT_LT(FArrayBox::maxAbsDiff(fast, naive, valid), 1e-13);
}

TEST(Reference, DecompositionInvariance) {
  // Reference results must agree between a single 16^3 box and eight
  // 8^3 boxes over the same domain (ghosts do the stitching).
  ProblemDomain dom(Box::cube(16));
  LevelData phiA0(DisjointBoxLayout(dom, 16), kNumComp, kNumGhost);
  LevelData phiA1(DisjointBoxLayout(dom, 16), kNumComp, kNumGhost);
  LevelData phiB0(DisjointBoxLayout(dom, 8), kNumComp, kNumGhost);
  LevelData phiB1(DisjointBoxLayout(dom, 8), kNumComp, kNumGhost);
  initializeExemplar(phiA0);
  initializeExemplar(phiB0);
  referenceFluxDiv(phiA0, phiA1);
  referenceFluxDiv(phiB0, phiB1);
  EXPECT_LT(LevelData::maxAbsDiffValid(phiA1, phiB1), 1e-13);
}

} // namespace
} // namespace fluxdiv::kernels
