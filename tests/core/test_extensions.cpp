// Tests for the two extensions beyond the paper's variant set: the hybrid
// box-x-tile parallel granularity (hierarchical overlapped tiling, after
// Zhou et al. [50]) and non-cubic tile aspects (partial blocking, after
// Rivera & Tseng via the Mint reference).

#include <gtest/gtest.h>

#include <set>

#include "core/runner.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "kernels/reference.hpp"

namespace fluxdiv::core {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::LevelData;
using grid::ProblemDomain;
using kernels::kNumComp;
using kernels::kNumGhost;

struct CaseData {
  DisjointBoxLayout dbl;
  LevelData phi0;
  LevelData expected;

  explicit CaseData(int domSide, int boxSide)
      : dbl(ProblemDomain(Box::cube(domSide)), boxSide),
        phi0(dbl, kNumComp, kNumGhost),
        expected(dbl, kNumComp, kNumGhost) {
    kernels::initializeExemplar(phi0);
    kernels::referenceFluxDiv(phi0, expected);
  }

  void expectMatches(const VariantConfig& cfg, int threads) {
    LevelData actual(dbl, kNumComp, kNumGhost);
    FluxDivRunner runner(cfg, threads);
    runner.run(phi0, actual);
    EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), 1e-12)
        << cfg.name();
  }
};

TEST(HybridGranularity, NameAndValidity) {
  VariantConfig cfg = makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                     ParallelGranularity::HybridBoxTile);
  EXPECT_EQ(cfg.name(), "Shift-Fuse OT-8: P=Box*Tile");
  EXPECT_TRUE(cfg.validFor(16));
  // Hybrid is only defined for overlapped tiles.
  VariantConfig bad = makeBlockedWF(8, ParallelGranularity::HybridBoxTile,
                                    ComponentLoop::Inside);
  EXPECT_FALSE(bad.validFor(16));
  VariantConfig baseline =
      makeBaseline(ParallelGranularity::HybridBoxTile);
  EXPECT_FALSE(baseline.validFor(16));
}

TEST(HybridGranularity, MatchesReferenceMultiBox) {
  CaseData s(16, 8); // 8 boxes
  for (auto intra :
       {IntraTileSchedule::Basic, IntraTileSchedule::ShiftFuse}) {
    s.expectMatches(
        makeOverlapped(intra, 4, ParallelGranularity::HybridBoxTile), 3);
  }
}

TEST(HybridGranularity, MatchesReferenceSingleBox) {
  CaseData s(16, 16);
  s.expectMatches(makeOverlapped(IntraTileSchedule::ShiftFuse, 4,
                                 ParallelGranularity::HybridBoxTile),
                  4);
}

TEST(HybridGranularity, RunnerRejectsNonOverlappedFamilies) {
  CaseData s(8, 8);
  VariantConfig bad = makeShiftFuse(ParallelGranularity::HybridBoxTile);
  LevelData out(s.dbl, kNumComp, kNumGhost);
  FluxDivRunner runner(bad, 2);
  EXPECT_THROW(runner.run(s.phi0, out), std::invalid_argument);
}

TEST(TileAspect, NamesCarryTheAspect) {
  VariantConfig pencil = makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                        ParallelGranularity::WithinBox);
  pencil.aspect = TileAspect::Pencil;
  EXPECT_EQ(pencil.name(), "Shift-Fuse OT-8-pencil: P<Box");
  VariantConfig slab = makeBlockedWF(4, ParallelGranularity::WithinBox,
                                     ComponentLoop::Inside);
  slab.aspect = TileAspect::Slab;
  EXPECT_EQ(slab.name(), "Blocked WF-CLI-4-slab: P<Box");
}

TEST(TileAspect, ExtentsFollowAspect) {
  VariantConfig cfg = makeOverlapped(IntraTileSchedule::Basic, 8,
                                     ParallelGranularity::WithinBox);
  EXPECT_EQ(tileExtents(cfg, 32), (std::array<int, 3>{8, 8, 8}));
  cfg.aspect = TileAspect::Pencil;
  EXPECT_EQ(tileExtents(cfg, 32), (std::array<int, 3>{32, 8, 8}));
  cfg.aspect = TileAspect::Slab;
  EXPECT_EQ(tileExtents(cfg, 32), (std::array<int, 3>{32, 32, 8}));
}

TEST(TileAspect, UntiledFamiliesRejectNonCube) {
  VariantConfig cfg = makeBaseline(ParallelGranularity::OverBoxes);
  cfg.aspect = TileAspect::Pencil;
  EXPECT_FALSE(cfg.validFor(16));
}

TEST(TileAspect, AllAspectsMatchReference) {
  CaseData s(16, 16);
  for (auto aspect :
       {TileAspect::Cube, TileAspect::Pencil, TileAspect::Slab}) {
    for (auto family : {ScheduleFamily::OverlappedTiles,
                        ScheduleFamily::BlockedWavefront}) {
      for (auto par : {ParallelGranularity::OverBoxes,
                       ParallelGranularity::WithinBox}) {
        VariantConfig cfg;
        cfg.family = family;
        cfg.intra = IntraTileSchedule::ShiftFuse;
        cfg.par = par;
        cfg.comp = ComponentLoop::Inside;
        cfg.tileSize = 4;
        cfg.aspect = aspect;
        if (family == ScheduleFamily::OverlappedTiles) {
          cfg.comp = ComponentLoop::Outside;
        }
        s.expectMatches(cfg, 3);
      }
    }
  }
}

TEST(TileAspect, HybridWithAspectMatchesReference) {
  CaseData s(16, 8);
  VariantConfig cfg = makeOverlapped(IntraTileSchedule::ShiftFuse, 4,
                                     ParallelGranularity::HybridBoxTile);
  cfg.aspect = TileAspect::Pencil;
  s.expectMatches(cfg, 3);
}

TEST(TileAspect, PencilReducesTileCountCorrectly) {
  // 32^3 box, T=8: cube -> 64 tiles, pencil -> 16, slab -> 4.
  VariantConfig cfg = makeOverlapped(IntraTileSchedule::Basic, 8,
                                     ParallelGranularity::WithinBox);
  const auto count = [&](TileAspect a) {
    cfg.aspect = a;
    const auto e = tileExtents(cfg, 32);
    return (32 / e[0]) * (32 / e[1]) * (32 / e[2]);
  };
  EXPECT_EQ(count(TileAspect::Cube), 64);
  EXPECT_EQ(count(TileAspect::Pencil), 16);
  EXPECT_EQ(count(TileAspect::Slab), 4);
}

TEST(TileOrder, MortonNameAndValidity) {
  VariantConfig cfg = makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                     ParallelGranularity::WithinBox);
  cfg.order = core::TileOrder::Morton;
  EXPECT_EQ(cfg.name(), "Shift-Fuse OT-8-morton: P<Box");
  EXPECT_TRUE(cfg.validFor(16));
  VariantConfig bad = makeBlockedWF(8, ParallelGranularity::WithinBox,
                                    ComponentLoop::Inside);
  bad.order = core::TileOrder::Morton;
  EXPECT_FALSE(bad.validFor(16)); // order is an OT-only axis
}

TEST(TileOrder, MortonMatchesReference) {
  CaseData s(16, 16);
  for (auto par : {ParallelGranularity::OverBoxes,
                   ParallelGranularity::WithinBox}) {
    for (auto intra :
         {IntraTileSchedule::Basic, IntraTileSchedule::ShiftFuse}) {
      VariantConfig cfg = makeOverlapped(intra, 4, par);
      cfg.order = core::TileOrder::Morton;
      s.expectMatches(cfg, 3);
    }
  }
}

TEST(ExtendedRegistry, AppendsValidUniqueExtensionVariants) {
  const auto base = enumerateVariants(32);
  const auto ext = enumerateVariants(32, /*includeExtensions=*/true);
  EXPECT_GT(ext.size(), base.size());
  // Tile sizes {4,8,16} x 4 extension kinds.
  EXPECT_EQ(ext.size(), base.size() + 3 * 4);
  std::set<std::string> names;
  for (const auto& v : ext) {
    EXPECT_TRUE(v.validFor(32)) << v.name();
    EXPECT_TRUE(names.insert(v.name()).second) << "dup " << v.name();
  }
  // The base registry is a prefix.
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(ext[i], base[i]);
  }
}

TEST(ExtendedRegistry, ExtensionVariantsMatchReference) {
  CaseData s(16, 8);
  const auto base = enumerateVariants(8);
  const auto ext = enumerateVariants(8, true);
  for (std::size_t i = base.size(); i < ext.size(); ++i) {
    s.expectMatches(ext[i], 3);
  }
}

} // namespace
} // namespace fluxdiv::core
