#include "core/workspace.hpp"

#include <gtest/gtest.h>

namespace fluxdiv::core {
namespace {

using grid::Box;

TEST(Workspace, FabReuseKeepsAllocation) {
  Workspace ws;
  grid::FArrayBox& a = ws.fab(Slot::Flux, Box::cube(8), 5);
  const grid::Real* data = a.dataPtr(0);
  grid::FArrayBox& b = ws.fab(Slot::Flux, Box::cube(8), 5);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.dataPtr(0), data); // no reallocation
}

TEST(Workspace, FabReshapesOnDifferentRequest) {
  Workspace ws;
  ws.fab(Slot::Flux, Box::cube(8), 5);
  grid::FArrayBox& b = ws.fab(Slot::Flux, Box::cube(4), 5);
  EXPECT_EQ(b.box(), Box::cube(4));
}

TEST(Workspace, BytesAccounting) {
  // Fab slots allocate with the default padded x-pitch, so accounting
  // reflects the padded footprint (what the allocation actually holds).
  const std::size_t fabBytes = static_cast<std::size_t>(grid::paddedPitch(4)) *
                               4 * 4 * 2 * sizeof(grid::Real);
  Workspace ws;
  EXPECT_EQ(ws.bytes(), 0u);
  grid::FArrayBox& f = ws.fab(Slot::Flux, Box::cube(4), 2);
  EXPECT_EQ(f.bytes(), fabBytes);
  EXPECT_EQ(ws.bytes(), fabBytes);
  ws.buffer(Slot::CarryX, 100);
  EXPECT_EQ(ws.bytes(), fabBytes + 100 * sizeof(grid::Real));
}

TEST(Workspace, PeakSurvivesClear) {
  Workspace ws;
  ws.fab(Slot::Flux, Box::cube(8), 5);
  const std::size_t peak = ws.peakBytes();
  EXPECT_GT(peak, 0u);
  ws.clear();
  EXPECT_EQ(ws.bytes(), 0u);
  EXPECT_EQ(ws.peakBytes(), peak);
}

TEST(Workspace, PeakTracksHighWater) {
  Workspace ws;
  ws.buffer(Slot::CarryX, 1000);
  ws.clear();
  ws.buffer(Slot::CarryX, 10);
  EXPECT_EQ(ws.peakBytes(), 1000 * sizeof(grid::Real));
}

TEST(Workspace, BufferGrowsMonotonically) {
  Workspace ws;
  grid::Real* p = ws.buffer(Slot::CarryY, 10);
  ASSERT_NE(p, nullptr);
  ws.buffer(Slot::CarryY, 5); // smaller request keeps capacity
  EXPECT_EQ(ws.bytes(), 10 * sizeof(grid::Real));
}

TEST(WorkspacePool, PerThreadIsolationAndPeaks) {
  WorkspacePool pool(4);
  EXPECT_EQ(pool.size(), 4);
  pool[0].buffer(Slot::CarryX, 100);
  pool[2].buffer(Slot::CarryX, 300);
  EXPECT_EQ(pool.maxPeakBytes(), 300 * sizeof(grid::Real));
  EXPECT_EQ(pool.totalPeakBytes(), 400 * sizeof(grid::Real));
}

TEST(WorkspacePool, ResizeNeverShrinks) {
  WorkspacePool pool(2);
  pool[1].buffer(Slot::CarryX, 7);
  pool.resize(1);
  EXPECT_EQ(pool.size(), 2);
  pool.resize(4);
  EXPECT_EQ(pool.size(), 4);
  EXPECT_EQ(pool[1].bytes(), 7 * sizeof(grid::Real));
}

} // namespace
} // namespace fluxdiv::core
