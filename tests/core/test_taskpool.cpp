// White-box tests of the work-stealing task pool (core/taskpool): every
// task runs exactly once, dependency edges order execution, cycles are
// rejected before anything runs, and the pool is reusable across runs.
// Also covers the labeled-diagnostics contract (graph-construction and
// cycle errors name task labels, not indices) and the deterministic
// adversarial-replay mode (core::ReplayMode).

#include "core/taskpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fluxdiv::core {
namespace {

TEST(TaskPool, RunsEveryTaskExactlyOnce) {
  TaskPool pool(4);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> runs(kTasks);
  TaskGraph graph;
  for (int i = 0; i < kTasks; ++i) {
    graph.addTask([&runs, i](int) { runs[i].fetch_add(1); }, i);
  }
  pool.run(graph);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(TaskPool, EmptyGraphIsANoop) {
  TaskPool pool(2);
  TaskGraph graph;
  EXPECT_NO_THROW(pool.run(graph));
}

TEST(TaskPool, SingleThreadedPoolWorks) {
  TaskPool pool(1);
  std::atomic<int> total{0};
  TaskGraph graph;
  for (int i = 0; i < 32; ++i) {
    graph.addTask([&total](int) { total.fetch_add(1); });
  }
  pool.run(graph);
  EXPECT_EQ(total.load(), 32);
}

TEST(TaskPool, DependencyOrdersExecution) {
  TaskPool pool(4);
  // Diamond: a -> {b, c} -> d, repeated many times to give interleavings a
  // chance to manifest.
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<int> stage{0};
    bool bSawA = false;
    bool cSawA = false;
    bool dSawAll = false;
    TaskGraph graph;
    const int a = graph.addTask([&](int) { stage.store(1); });
    const int b = graph.addTask([&](int) {
      bSawA = stage.load() >= 1;
      stage.fetch_add(1);
    });
    const int c = graph.addTask([&](int) {
      cSawA = stage.load() >= 1;
      stage.fetch_add(1);
    });
    const int d = graph.addTask([&](int) { dSawAll = stage.load() == 3; });
    graph.addDep(a, b);
    graph.addDep(a, c);
    graph.addDep(b, d);
    graph.addDep(c, d);
    pool.run(graph);
    EXPECT_TRUE(bSawA);
    EXPECT_TRUE(cSawA);
    EXPECT_TRUE(dSawAll);
  }
}

TEST(TaskPool, LongChainRunsInOrder) {
  TaskPool pool(3);
  constexpr int kLen = 200;
  std::vector<int> order;
  TaskGraph graph;
  int prev = -1;
  for (int i = 0; i < kLen; ++i) {
    // The chain serializes execution, so the push_back needs no lock.
    const int t = graph.addTask([&order, i](int) { order.push_back(i); },
                                i % 3);
    if (prev >= 0) {
      graph.addDep(prev, t);
    }
    prev = t;
  }
  pool.run(graph);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kLen));
  for (int i = 0; i < kLen; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(TaskPool, CycleIsRejectedBeforeExecution) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  TaskGraph graph;
  const int a = graph.addTask([&ran](int) { ran.fetch_add(1); });
  const int b = graph.addTask([&ran](int) { ran.fetch_add(1); });
  const int free = graph.addTask([&ran](int) { ran.fetch_add(1); });
  (void)free;
  graph.addDep(a, b);
  graph.addDep(b, a);
  EXPECT_THROW(pool.run(graph), std::logic_error);
  EXPECT_EQ(ran.load(), 0) << "a cyclic graph must not execute any task";
}

TEST(TaskPool, ReusableAcrossRuns) {
  TaskPool pool(4);
  std::atomic<int> total{0};
  for (int run = 0; run < 20; ++run) {
    TaskGraph graph;
    for (int i = 0; i < 64; ++i) {
      graph.addTask([&total](int) { total.fetch_add(1); }, i);
    }
    pool.run(graph);
  }
  EXPECT_EQ(total.load(), 20 * 64);
}

TEST(TaskPool, CurrentWorkerIsMinusOneOffPoolAndValidOnPool) {
  EXPECT_EQ(TaskPool::currentWorker(), -1);
  TaskPool pool(4);
  std::atomic<bool> allValid{true};
  std::atomic<bool> argMatchesTls{true};
  TaskGraph graph;
  for (int i = 0; i < 128; ++i) {
    graph.addTask([&](int worker) {
      const int cur = TaskPool::currentWorker();
      if (cur < 0 || cur >= 4) {
        allValid.store(false);
      }
      if (cur != worker) {
        argMatchesTls.store(false);
      }
    });
  }
  pool.run(graph);
  EXPECT_TRUE(allValid.load());
  EXPECT_TRUE(argMatchesTls.load());
  EXPECT_EQ(TaskPool::currentWorker(), -1)
      << "the calling thread leaves its worker identity behind";
}

TEST(TaskPool, OwnerHintsAreTakenModuloThreadCount) {
  TaskPool pool(3);
  std::atomic<int> total{0};
  TaskGraph graph;
  // Out-of-range and negative owners must not crash or drop tasks.
  for (const int owner : {-7, -1, 0, 2, 3, 99}) {
    graph.addTask([&total](int) { total.fetch_add(1); }, owner);
  }
  pool.run(graph);
  EXPECT_EQ(total.load(), 6);
}

TEST(TaskPool, ManyDependentsReleaseOnlyWhenAllPredecessorsDone) {
  TaskPool pool(4);
  constexpr int kPreds = 40;
  std::atomic<int> done{0};
  bool sawAll = false;
  TaskGraph graph;
  std::vector<int> preds;
  for (int i = 0; i < kPreds; ++i) {
    preds.push_back(
        graph.addTask([&done](int) { done.fetch_add(1); }, i));
  }
  const int sink =
      graph.addTask([&](int) { sawAll = done.load() == kPreds; });
  for (const int p : preds) {
    graph.addDep(p, sink);
  }
  pool.run(graph);
  EXPECT_TRUE(sawAll);
}

/// Runs `fn`, expecting it to throw E; returns the exception message.
template <typename E, typename Fn> std::string messageOf(Fn&& fn) {
  try {
    fn();
  } catch (const E& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected exception was not thrown";
  return {};
}

TEST(TaskPool, LabelsRoundTripAndDefaultToIndices) {
  TaskGraph graph;
  const int a = graph.addTask([](int) {}, 0, "box 3 interior");
  const int b = graph.addTask([](int) {});
  EXPECT_EQ(graph.label(a), "box 3 interior");
  EXPECT_EQ(graph.label(b), "task#1");
  EXPECT_NE(graph.label(99).find("out of range"), std::string::npos);
}

TEST(TaskPool, CycleErrorNamesTaskLabels) {
  TaskPool pool(2);
  TaskGraph graph;
  const int a = graph.addTask([](int) {}, 0, "box 0 fringe z-lo");
  const int b = graph.addTask([](int) {}, 0, "exchange op 7");
  graph.addDep(a, b);
  graph.addDep(b, a);
  const std::string msg =
      messageOf<std::logic_error>([&] { pool.run(graph); });
  EXPECT_NE(msg.find("box 0 fringe z-lo"), std::string::npos) << msg;
  EXPECT_NE(msg.find("exchange op 7"), std::string::npos) << msg;
}

TEST(TaskPool, AddDepErrorsNameTaskLabels) {
  TaskGraph graph;
  const int a = graph.addTask([](int) {}, 0, "box 2 velocity");
  const std::string self = messageOf<std::invalid_argument>(
      [&] { graph.addDep(a, a); });
  EXPECT_NE(self.find("box 2 velocity"), std::string::npos) << self;
  const std::string range = messageOf<std::invalid_argument>(
      [&] { graph.addDep(a, 41); });
  EXPECT_NE(range.find("box 2 velocity"), std::string::npos) << range;
  EXPECT_NE(range.find("out of range"), std::string::npos) << range;
}

TEST(TaskPool, ReplayOrderNamesRoundTrip) {
  for (const ReplayOrder order : kReplayOrders) {
    EXPECT_EQ(parseReplayOrder(replayOrderName(order)), order);
  }
  EXPECT_EQ(parseReplayOrder("none"), ReplayOrder::None);
  EXPECT_THROW(parseReplayOrder("chaotic"), std::invalid_argument);
}

TEST(TaskPool, ReplayRunsEveryTaskOnceRespectingDeps) {
  TaskPool pool(3);
  for (const ReplayOrder order : kReplayOrders) {
    // Diamond a -> {b, c} -> d plus free tasks, replayed serially.
    std::vector<int> trace;
    TaskGraph graph;
    const int a = graph.addTask([&](int) { trace.push_back(0); });
    const int b = graph.addTask([&](int) { trace.push_back(1); });
    const int c = graph.addTask([&](int) { trace.push_back(2); });
    const int d = graph.addTask([&](int) { trace.push_back(3); });
    for (int i = 0; i < 4; ++i) {
      graph.addTask([&, i](int) { trace.push_back(4 + i); });
    }
    graph.addDep(a, b);
    graph.addDep(a, c);
    graph.addDep(b, d);
    graph.addDep(c, d);
    pool.runReplay(graph, {order, /*seed=*/7});
    ASSERT_EQ(trace.size(), 8u) << replayOrderName(order);
    std::vector<std::size_t> pos(8);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      pos[static_cast<std::size_t>(trace[i])] = i;
    }
    EXPECT_LT(pos[0], pos[1]) << replayOrderName(order);
    EXPECT_LT(pos[0], pos[2]) << replayOrderName(order);
    EXPECT_LT(pos[1], pos[3]) << replayOrderName(order);
    EXPECT_LT(pos[2], pos[3]) << replayOrderName(order);
  }
}

TEST(TaskPool, ReplayIsDeterministicPerSeed) {
  TaskPool pool(4);
  const auto traceOf = [&pool](std::uint64_t seed) {
    std::vector<int> trace;
    TaskGraph graph;
    for (int i = 0; i < 64; ++i) {
      graph.addTask([&trace, i](int) { trace.push_back(i); }, i);
    }
    pool.runReplay(graph, {ReplayOrder::Random, seed});
    return trace;
  };
  EXPECT_EQ(traceOf(11), traceOf(11));
  EXPECT_NE(traceOf(11), traceOf(12))
      << "different seeds should (with 64 tasks) pick different orders";
}

TEST(TaskPool, ReplayAttributesWorkersByTaskIndex) {
  TaskPool pool(3);
  std::vector<int> workers;
  TaskGraph graph;
  for (int i = 0; i < 9; ++i) {
    graph.addTask([&workers](int w) {
      workers.push_back(w);
      EXPECT_EQ(TaskPool::currentWorker(), w);
    });
  }
  pool.runReplay(graph, {ReplayOrder::Fifo, 0});
  ASSERT_EQ(workers.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(workers[static_cast<std::size_t>(i)], i % 3);
  }
  EXPECT_EQ(TaskPool::currentWorker(), -1)
      << "replay must restore the caller's worker identity";
}

TEST(TaskPool, ReplayRejectsCyclesLikeRun) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  TaskGraph graph;
  const int a = graph.addTask([&ran](int) { ran.fetch_add(1); });
  const int b = graph.addTask([&ran](int) { ran.fetch_add(1); });
  graph.addDep(a, b);
  graph.addDep(b, a);
  EXPECT_THROW(pool.runReplay(graph, {ReplayOrder::Lifo, 0}),
               std::logic_error);
  EXPECT_EQ(ran.load(), 0);
}

} // namespace
} // namespace fluxdiv::core
