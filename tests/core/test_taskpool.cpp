// White-box tests of the work-stealing task pool (core/taskpool): every
// task runs exactly once, dependency edges order execution, cycles are
// rejected before anything runs, and the pool is reusable across runs.
// Also covers the labeled-diagnostics contract (graph-construction and
// cycle errors name task labels, not indices) and the deterministic
// adversarial-replay mode (core::ReplayMode).

#include "core/taskpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fluxdiv::core {
namespace {

TEST(TaskPool, RunsEveryTaskExactlyOnce) {
  TaskPool pool(4);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> runs(kTasks);
  TaskGraph graph;
  for (int i = 0; i < kTasks; ++i) {
    graph.addTask([&runs, i](int) { runs[i].fetch_add(1); }, i);
  }
  pool.run(graph);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(TaskPool, EmptyGraphIsANoop) {
  TaskPool pool(2);
  TaskGraph graph;
  EXPECT_NO_THROW(pool.run(graph));
}

TEST(TaskPool, SingleThreadedPoolWorks) {
  TaskPool pool(1);
  std::atomic<int> total{0};
  TaskGraph graph;
  for (int i = 0; i < 32; ++i) {
    graph.addTask([&total](int) { total.fetch_add(1); });
  }
  pool.run(graph);
  EXPECT_EQ(total.load(), 32);
}

TEST(TaskPool, DependencyOrdersExecution) {
  TaskPool pool(4);
  // Diamond: a -> {b, c} -> d, repeated many times to give interleavings a
  // chance to manifest.
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<int> stage{0};
    bool bSawA = false;
    bool cSawA = false;
    bool dSawAll = false;
    TaskGraph graph;
    const int a = graph.addTask([&](int) { stage.store(1); });
    const int b = graph.addTask([&](int) {
      bSawA = stage.load() >= 1;
      stage.fetch_add(1);
    });
    const int c = graph.addTask([&](int) {
      cSawA = stage.load() >= 1;
      stage.fetch_add(1);
    });
    const int d = graph.addTask([&](int) { dSawAll = stage.load() == 3; });
    graph.addDep(a, b);
    graph.addDep(a, c);
    graph.addDep(b, d);
    graph.addDep(c, d);
    pool.run(graph);
    EXPECT_TRUE(bSawA);
    EXPECT_TRUE(cSawA);
    EXPECT_TRUE(dSawAll);
  }
}

TEST(TaskPool, LongChainRunsInOrder) {
  TaskPool pool(3);
  constexpr int kLen = 200;
  std::vector<int> order;
  TaskGraph graph;
  int prev = -1;
  for (int i = 0; i < kLen; ++i) {
    // The chain serializes execution, so the push_back needs no lock.
    const int t = graph.addTask([&order, i](int) { order.push_back(i); },
                                i % 3);
    if (prev >= 0) {
      graph.addDep(prev, t);
    }
    prev = t;
  }
  pool.run(graph);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kLen));
  for (int i = 0; i < kLen; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(TaskPool, CycleIsRejectedBeforeExecution) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  TaskGraph graph;
  const int a = graph.addTask([&ran](int) { ran.fetch_add(1); });
  const int b = graph.addTask([&ran](int) { ran.fetch_add(1); });
  const int free = graph.addTask([&ran](int) { ran.fetch_add(1); });
  (void)free;
  graph.addDep(a, b);
  graph.addDep(b, a);
  EXPECT_THROW(pool.run(graph), std::logic_error);
  EXPECT_EQ(ran.load(), 0) << "a cyclic graph must not execute any task";
}

TEST(TaskPool, ReusableAcrossRuns) {
  TaskPool pool(4);
  std::atomic<int> total{0};
  for (int run = 0; run < 20; ++run) {
    TaskGraph graph;
    for (int i = 0; i < 64; ++i) {
      graph.addTask([&total](int) { total.fetch_add(1); }, i);
    }
    pool.run(graph);
  }
  EXPECT_EQ(total.load(), 20 * 64);
}

TEST(TaskPool, CurrentWorkerIsMinusOneOffPoolAndValidOnPool) {
  EXPECT_EQ(TaskPool::currentWorker(), -1);
  TaskPool pool(4);
  std::atomic<bool> allValid{true};
  std::atomic<bool> argMatchesTls{true};
  TaskGraph graph;
  for (int i = 0; i < 128; ++i) {
    graph.addTask([&](int worker) {
      const int cur = TaskPool::currentWorker();
      if (cur < 0 || cur >= 4) {
        allValid.store(false);
      }
      if (cur != worker) {
        argMatchesTls.store(false);
      }
    });
  }
  pool.run(graph);
  EXPECT_TRUE(allValid.load());
  EXPECT_TRUE(argMatchesTls.load());
  EXPECT_EQ(TaskPool::currentWorker(), -1)
      << "the calling thread leaves its worker identity behind";
}

TEST(TaskPool, OwnerHintsAreTakenModuloThreadCount) {
  TaskPool pool(3);
  std::atomic<int> total{0};
  TaskGraph graph;
  // Out-of-range and negative owners must not crash or drop tasks.
  for (const int owner : {-7, -1, 0, 2, 3, 99}) {
    graph.addTask([&total](int) { total.fetch_add(1); }, owner);
  }
  pool.run(graph);
  EXPECT_EQ(total.load(), 6);
}

TEST(TaskPool, ManyDependentsReleaseOnlyWhenAllPredecessorsDone) {
  TaskPool pool(4);
  constexpr int kPreds = 40;
  std::atomic<int> done{0};
  bool sawAll = false;
  TaskGraph graph;
  std::vector<int> preds;
  for (int i = 0; i < kPreds; ++i) {
    preds.push_back(
        graph.addTask([&done](int) { done.fetch_add(1); }, i));
  }
  const int sink =
      graph.addTask([&](int) { sawAll = done.load() == kPreds; });
  for (const int p : preds) {
    graph.addDep(p, sink);
  }
  pool.run(graph);
  EXPECT_TRUE(sawAll);
}

/// Runs `fn`, expecting it to throw E; returns the exception message.
template <typename E, typename Fn> std::string messageOf(Fn&& fn) {
  try {
    fn();
  } catch (const E& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected exception was not thrown";
  return {};
}

TEST(TaskPool, LabelsRoundTripAndDefaultToIndices) {
  TaskGraph graph;
  const int a = graph.addTask([](int) {}, 0, "box 3 interior");
  const int b = graph.addTask([](int) {});
  EXPECT_EQ(graph.label(a), "box 3 interior");
  EXPECT_EQ(graph.label(b), "task#1");
  EXPECT_NE(graph.label(99).find("out of range"), std::string::npos);
}

TEST(TaskPool, CycleErrorNamesTaskLabels) {
  TaskPool pool(2);
  TaskGraph graph;
  const int a = graph.addTask([](int) {}, 0, "box 0 fringe z-lo");
  const int b = graph.addTask([](int) {}, 0, "exchange op 7");
  graph.addDep(a, b);
  graph.addDep(b, a);
  const std::string msg =
      messageOf<std::logic_error>([&] { pool.run(graph); });
  EXPECT_NE(msg.find("box 0 fringe z-lo"), std::string::npos) << msg;
  EXPECT_NE(msg.find("exchange op 7"), std::string::npos) << msg;
}

TEST(TaskPool, AddDepErrorsNameTaskLabels) {
  TaskGraph graph;
  const int a = graph.addTask([](int) {}, 0, "box 2 velocity");
  const std::string self = messageOf<std::invalid_argument>(
      [&] { graph.addDep(a, a); });
  EXPECT_NE(self.find("box 2 velocity"), std::string::npos) << self;
  const std::string range = messageOf<std::invalid_argument>(
      [&] { graph.addDep(a, 41); });
  EXPECT_NE(range.find("box 2 velocity"), std::string::npos) << range;
  EXPECT_NE(range.find("out of range"), std::string::npos) << range;
}

TEST(TaskPool, ReplayOrderNamesRoundTrip) {
  for (const ReplayOrder order : kReplayOrders) {
    EXPECT_EQ(parseReplayOrder(replayOrderName(order)), order);
  }
  EXPECT_EQ(parseReplayOrder("none"), ReplayOrder::None);
  EXPECT_THROW(parseReplayOrder("chaotic"), std::invalid_argument);
}

TEST(TaskPool, ReplayRunsEveryTaskOnceRespectingDeps) {
  TaskPool pool(3);
  for (const ReplayOrder order : kReplayOrders) {
    // Diamond a -> {b, c} -> d plus free tasks, replayed serially.
    std::vector<int> trace;
    TaskGraph graph;
    const int a = graph.addTask([&](int) { trace.push_back(0); });
    const int b = graph.addTask([&](int) { trace.push_back(1); });
    const int c = graph.addTask([&](int) { trace.push_back(2); });
    const int d = graph.addTask([&](int) { trace.push_back(3); });
    for (int i = 0; i < 4; ++i) {
      graph.addTask([&, i](int) { trace.push_back(4 + i); });
    }
    graph.addDep(a, b);
    graph.addDep(a, c);
    graph.addDep(b, d);
    graph.addDep(c, d);
    pool.runReplay(graph, {order, /*seed=*/7});
    ASSERT_EQ(trace.size(), 8u) << replayOrderName(order);
    std::vector<std::size_t> pos(8);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      pos[static_cast<std::size_t>(trace[i])] = i;
    }
    EXPECT_LT(pos[0], pos[1]) << replayOrderName(order);
    EXPECT_LT(pos[0], pos[2]) << replayOrderName(order);
    EXPECT_LT(pos[1], pos[3]) << replayOrderName(order);
    EXPECT_LT(pos[2], pos[3]) << replayOrderName(order);
  }
}

TEST(TaskPool, ReplayIsDeterministicPerSeed) {
  TaskPool pool(4);
  const auto traceOf = [&pool](std::uint64_t seed) {
    std::vector<int> trace;
    TaskGraph graph;
    for (int i = 0; i < 64; ++i) {
      graph.addTask([&trace, i](int) { trace.push_back(i); }, i);
    }
    pool.runReplay(graph, {ReplayOrder::Random, seed});
    return trace;
  };
  EXPECT_EQ(traceOf(11), traceOf(11));
  EXPECT_NE(traceOf(11), traceOf(12))
      << "different seeds should (with 64 tasks) pick different orders";
}

TEST(TaskPool, ReplayAttributesWorkersByTaskIndex) {
  TaskPool pool(3);
  std::vector<int> workers;
  TaskGraph graph;
  for (int i = 0; i < 9; ++i) {
    graph.addTask([&workers](int w) {
      workers.push_back(w);
      EXPECT_EQ(TaskPool::currentWorker(), w);
    });
  }
  pool.runReplay(graph, {ReplayOrder::Fifo, 0});
  ASSERT_EQ(workers.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(workers[static_cast<std::size_t>(i)], i % 3);
  }
  EXPECT_EQ(TaskPool::currentWorker(), -1)
      << "replay must restore the caller's worker identity";
}

TEST(TaskPool, ReplayRejectsCyclesLikeRun) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  TaskGraph graph;
  const int a = graph.addTask([&ran](int) { ran.fetch_add(1); });
  const int b = graph.addTask([&ran](int) { ran.fetch_add(1); });
  graph.addDep(a, b);
  graph.addDep(b, a);
  EXPECT_THROW(pool.runReplay(graph, {ReplayOrder::Lifo, 0}),
               std::logic_error);
  EXPECT_EQ(ran.load(), 0);
}

// ---------------------------------------------------------------------------
// Service-mode surface: domains, asynchronous submissions, counters.

TEST(TaskPool, DomainCreationValidatesWeight) {
  TaskPool pool(2);
  EXPECT_EQ(pool.domainCount(), 1) << "domain 0 preexists";
  const int d1 = pool.createDomain(2, "heavy");
  const int d2 = pool.createDomain();
  EXPECT_EQ(d1, 1);
  EXPECT_EQ(d2, 2);
  EXPECT_EQ(pool.domainCount(), 3);
  EXPECT_THROW(pool.createDomain(0), std::invalid_argument);
  EXPECT_THROW(pool.createDomain(-3), std::invalid_argument);
}

TEST(TaskPool, SubmitWaitRunsEveryTaskInItsDomain) {
  TaskPool pool(4);
  const int dom = pool.createDomain(1, "svc");
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  TaskGraph graph;
  for (int i = 0; i < kTasks; ++i) {
    graph.addTask([&runs, i](int) { runs[i].fetch_add(1); }, i);
  }
  const TaskPool::Ticket t = pool.submit(graph, dom);
  pool.wait(t);
  EXPECT_TRUE(pool.finished(t));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << i;
  }
  const DomainStats ds = pool.domainStats(dom);
  EXPECT_EQ(ds.executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(pool.domainStats(0).executed, 0U);
}

TEST(TaskPool, FinishedStaysTrueAfterTicketRecycle) {
  TaskPool pool(2);
  TaskGraph graph;
  graph.addTask([](int) {});
  const TaskPool::Ticket t = pool.submit(graph);
  pool.wait(t); // recycles the slot
  EXPECT_TRUE(pool.finished(t));
  // Another submission may reuse the slot; the stale ticket still
  // reports finished.
  TaskGraph graph2;
  std::atomic<int> ran{0};
  graph2.addTask([&ran](int) { ran.fetch_add(1); });
  const TaskPool::Ticket t2 = pool.submit(graph2);
  EXPECT_TRUE(pool.finished(t));
  pool.wait(t2);
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskPool, EmptyGraphSubmissionIsImmediatelyFinished) {
  TaskPool pool(2);
  TaskGraph empty;
  const TaskPool::Ticket t = pool.submit(empty);
  EXPECT_TRUE(pool.finished(t));
  pool.wait(t); // must not block
}

TEST(TaskPool, ConcurrentSubmissionsFromDifferentDomainsInterleave) {
  TaskPool pool(4);
  const int d1 = pool.createDomain(1, "a");
  const int d2 = pool.createDomain(2, "b");
  constexpr int kTasks = 300;
  std::vector<std::atomic<int>> runs(2 * kTasks);
  TaskGraph g1;
  TaskGraph g2;
  for (int i = 0; i < kTasks; ++i) {
    g1.addTask([&runs, i](int) { runs[i].fetch_add(1); }, i);
    g2.addTask([&runs, i](int) { runs[kTasks + i].fetch_add(1); }, i);
  }
  const TaskPool::Ticket t1 = pool.submit(g1, d1);
  const TaskPool::Ticket t2 = pool.submit(g2, d2);
  pool.wait(t1);
  pool.wait(t2);
  for (int i = 0; i < 2 * kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << i;
  }
  EXPECT_EQ(pool.domainStats(d1).executed,
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(pool.domainStats(d2).executed,
            static_cast<std::uint64_t>(kTasks));
}

TEST(TaskPool, WaitAnyReturnsAFinishedSubmission) {
  TaskPool pool(4);
  const int dom = pool.createDomain();
  TaskGraph quick;
  quick.addTask([](int) {});
  TaskGraph chain;
  std::atomic<int> steps{0};
  int prev = chain.addTask([&steps](int) { steps.fetch_add(1); });
  for (int i = 1; i < 64; ++i) {
    const int next = chain.addTask([&steps](int) { steps.fetch_add(1); });
    chain.addDep(prev, next);
    prev = next;
  }
  std::vector<TaskPool::Ticket> tickets;
  tickets.push_back(pool.submit(chain, dom));
  tickets.push_back(pool.submit(quick, dom));
  // Harvest both, in whatever completion order the pool produces.
  std::size_t k1 = pool.waitAny(tickets);
  ASSERT_LT(k1, tickets.size());
  EXPECT_TRUE(pool.finished(tickets[k1]));
  const std::vector<TaskPool::Ticket> rest{tickets[1 - k1]};
  const std::size_t k2 = pool.waitAny(rest);
  EXPECT_EQ(k2, 0U);
  EXPECT_EQ(steps.load(), 64);
  EXPECT_THROW(pool.waitAny({}), std::invalid_argument);
}

TEST(TaskPool, StatsCountExecutionStealingAndSubmissions) {
  TaskPool pool(2);
  pool.resetStats();
  TaskGraph graph;
  constexpr int kTasks = 100;
  std::atomic<int> runs{0};
  for (int i = 0; i < kTasks; ++i) {
    graph.addTask([&runs](int) { runs.fetch_add(1); }, i);
  }
  pool.run(graph);
  const TaskPoolStats s = pool.stats();
  EXPECT_EQ(s.executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(s.submissions, 1U);
  EXPECT_LE(s.stolen, s.executed);
  EXPECT_GE(s.busySeconds, 0.0);
  pool.resetStats();
  const TaskPoolStats z = pool.stats();
  EXPECT_EQ(z.executed, 0U);
  EXPECT_EQ(z.submissions, 0U);
  EXPECT_EQ(z.busySeconds, 0.0);
  EXPECT_EQ(pool.domainStats(0).executed, 0U);
}

TEST(TaskPool, WeightedDomainsAllMakeProgressUnderLoad) {
  // Fairness smoke: three domains with different weights submitted
  // back-to-back all complete, and per-domain counters attribute every
  // task to its own domain.
  TaskPool pool(3);
  const int weights[3] = {1, 2, 4};
  int doms[3];
  for (int d = 0; d < 3; ++d) {
    doms[d] = pool.createDomain(weights[d]);
  }
  constexpr int kTasks = 240;
  std::vector<std::atomic<int>> runs(3 * kTasks);
  TaskGraph graphs[3];
  std::vector<TaskPool::Ticket> tickets;
  for (int d = 0; d < 3; ++d) {
    for (int i = 0; i < kTasks; ++i) {
      graphs[d].addTask(
          [&runs, d, i](int) { runs[d * kTasks + i].fetch_add(1); }, i);
    }
  }
  for (int d = 0; d < 3; ++d) {
    tickets.push_back(pool.submit(graphs[d], doms[d]));
  }
  std::vector<TaskPool::Ticket> pending = tickets;
  while (!pending.empty()) {
    const std::size_t k = pool.waitAny(pending);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(k));
  }
  for (int i = 0; i < 3 * kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << i;
  }
  std::uint64_t total = 0;
  for (int d = 0; d < 3; ++d) {
    const DomainStats ds = pool.domainStats(doms[d]);
    EXPECT_EQ(ds.executed, static_cast<std::uint64_t>(kTasks));
    total += ds.executed;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(3 * kTasks));
}

TEST(TaskPool, SubmitRejectsUnknownDomainAndCycles) {
  TaskPool pool(2);
  TaskGraph graph;
  graph.addTask([](int) {});
  EXPECT_THROW(pool.submit(graph, 99), std::invalid_argument);
  EXPECT_THROW(pool.submit(graph, -1), std::invalid_argument);
  TaskGraph cyclic;
  const int a = cyclic.addTask([](int) {});
  const int b = cyclic.addTask([](int) {});
  cyclic.addDep(a, b);
  cyclic.addDep(b, a);
  EXPECT_THROW(pool.submit(cyclic, 0), std::logic_error);
}

} // namespace
} // namespace fluxdiv::core
