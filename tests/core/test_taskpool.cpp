// White-box tests of the work-stealing task pool (core/taskpool): every
// task runs exactly once, dependency edges order execution, cycles are
// rejected before anything runs, and the pool is reusable across runs.

#include "core/taskpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace fluxdiv::core {
namespace {

TEST(TaskPool, RunsEveryTaskExactlyOnce) {
  TaskPool pool(4);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> runs(kTasks);
  TaskGraph graph;
  for (int i = 0; i < kTasks; ++i) {
    graph.addTask([&runs, i](int) { runs[i].fetch_add(1); }, i);
  }
  pool.run(graph);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(TaskPool, EmptyGraphIsANoop) {
  TaskPool pool(2);
  TaskGraph graph;
  EXPECT_NO_THROW(pool.run(graph));
}

TEST(TaskPool, SingleThreadedPoolWorks) {
  TaskPool pool(1);
  std::atomic<int> total{0};
  TaskGraph graph;
  for (int i = 0; i < 32; ++i) {
    graph.addTask([&total](int) { total.fetch_add(1); });
  }
  pool.run(graph);
  EXPECT_EQ(total.load(), 32);
}

TEST(TaskPool, DependencyOrdersExecution) {
  TaskPool pool(4);
  // Diamond: a -> {b, c} -> d, repeated many times to give interleavings a
  // chance to manifest.
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<int> stage{0};
    bool bSawA = false;
    bool cSawA = false;
    bool dSawAll = false;
    TaskGraph graph;
    const int a = graph.addTask([&](int) { stage.store(1); });
    const int b = graph.addTask([&](int) {
      bSawA = stage.load() >= 1;
      stage.fetch_add(1);
    });
    const int c = graph.addTask([&](int) {
      cSawA = stage.load() >= 1;
      stage.fetch_add(1);
    });
    const int d = graph.addTask([&](int) { dSawAll = stage.load() == 3; });
    graph.addDep(a, b);
    graph.addDep(a, c);
    graph.addDep(b, d);
    graph.addDep(c, d);
    pool.run(graph);
    EXPECT_TRUE(bSawA);
    EXPECT_TRUE(cSawA);
    EXPECT_TRUE(dSawAll);
  }
}

TEST(TaskPool, LongChainRunsInOrder) {
  TaskPool pool(3);
  constexpr int kLen = 200;
  std::vector<int> order;
  TaskGraph graph;
  int prev = -1;
  for (int i = 0; i < kLen; ++i) {
    // The chain serializes execution, so the push_back needs no lock.
    const int t = graph.addTask([&order, i](int) { order.push_back(i); },
                                i % 3);
    if (prev >= 0) {
      graph.addDep(prev, t);
    }
    prev = t;
  }
  pool.run(graph);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kLen));
  for (int i = 0; i < kLen; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(TaskPool, CycleIsRejectedBeforeExecution) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  TaskGraph graph;
  const int a = graph.addTask([&ran](int) { ran.fetch_add(1); });
  const int b = graph.addTask([&ran](int) { ran.fetch_add(1); });
  const int free = graph.addTask([&ran](int) { ran.fetch_add(1); });
  (void)free;
  graph.addDep(a, b);
  graph.addDep(b, a);
  EXPECT_THROW(pool.run(graph), std::logic_error);
  EXPECT_EQ(ran.load(), 0) << "a cyclic graph must not execute any task";
}

TEST(TaskPool, ReusableAcrossRuns) {
  TaskPool pool(4);
  std::atomic<int> total{0};
  for (int run = 0; run < 20; ++run) {
    TaskGraph graph;
    for (int i = 0; i < 64; ++i) {
      graph.addTask([&total](int) { total.fetch_add(1); }, i);
    }
    pool.run(graph);
  }
  EXPECT_EQ(total.load(), 20 * 64);
}

TEST(TaskPool, CurrentWorkerIsMinusOneOffPoolAndValidOnPool) {
  EXPECT_EQ(TaskPool::currentWorker(), -1);
  TaskPool pool(4);
  std::atomic<bool> allValid{true};
  std::atomic<bool> argMatchesTls{true};
  TaskGraph graph;
  for (int i = 0; i < 128; ++i) {
    graph.addTask([&](int worker) {
      const int cur = TaskPool::currentWorker();
      if (cur < 0 || cur >= 4) {
        allValid.store(false);
      }
      if (cur != worker) {
        argMatchesTls.store(false);
      }
    });
  }
  pool.run(graph);
  EXPECT_TRUE(allValid.load());
  EXPECT_TRUE(argMatchesTls.load());
  EXPECT_EQ(TaskPool::currentWorker(), -1)
      << "the calling thread leaves its worker identity behind";
}

TEST(TaskPool, OwnerHintsAreTakenModuloThreadCount) {
  TaskPool pool(3);
  std::atomic<int> total{0};
  TaskGraph graph;
  // Out-of-range and negative owners must not crash or drop tasks.
  for (const int owner : {-7, -1, 0, 2, 3, 99}) {
    graph.addTask([&total](int) { total.fetch_add(1); }, owner);
  }
  pool.run(graph);
  EXPECT_EQ(total.load(), 6);
}

TEST(TaskPool, ManyDependentsReleaseOnlyWhenAllPredecessorsDone) {
  TaskPool pool(4);
  constexpr int kPreds = 40;
  std::atomic<int> done{0};
  bool sawAll = false;
  TaskGraph graph;
  std::vector<int> preds;
  for (int i = 0; i < kPreds; ++i) {
    preds.push_back(
        graph.addTask([&done](int) { done.fetch_add(1); }, i));
  }
  const int sink =
      graph.addTask([&](int) { sawAll = done.load() == kPreds; });
  for (const int p : preds) {
    graph.addDep(p, sink);
  }
  pool.run(graph);
  EXPECT_TRUE(sawAll);
}

} // namespace
} // namespace fluxdiv::core
