// Storage-pitch independence of the executors: running any schedule
// family on Pitch::Padded fabs (the default aligned, padded allocation)
// must produce results bit-identical to the same schedule on Pitch::Dense
// fabs. The pad lanes change only where rows live in memory, never which
// cells a kernel reads or the order it combines them, so the comparison
// is exact equality — not a tolerance.

#include <gtest/gtest.h>

#include "core/exec_common.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::core::detail {
namespace {

using grid::Pitch;

constexpr Real kScale = -0.125;

/// Run one serial per-box executor on fabs of the given pitch.
template <typename Exec>
FArrayBox runWithPitch(Exec&& exec, const VariantConfig& cfg,
                       const Box& valid, Pitch pitch) {
  FArrayBox phi0(valid.grow(kernels::kNumGhost), kernels::kNumComp, pitch);
  FArrayBox phi1(valid, kernels::kNumComp, pitch);
  kernels::initializeExemplar(phi0, valid);
  phi1.setVal(0.0);
  Workspace ws;
  exec(cfg, phi0, phi1, valid, ws, kScale);
  return phi1;
}

void expectBitIdentical(const FArrayBox& padded, const FArrayBox& dense,
                        const Box& valid, const std::string& what) {
  ASSERT_EQ(padded.pitch() % grid::kSimdDoubles, 0) << what;
  for (int c = 0; c < kernels::kNumComp; ++c) {
    forEachCell(valid, [&](int i, int j, int k) {
      ASSERT_EQ(padded(i, j, k, c), dense(i, j, k, c))
          << what << " comp " << c << " at " << i << ',' << j << ',' << k;
    });
  }
}

struct NamedExec {
  const char* label;
  VariantConfig cfg;
  void (*exec)(const VariantConfig&, const FArrayBox&, FArrayBox&,
               const Box&, Workspace&, Real);
};

std::vector<NamedExec> serialExecutors() {
  const auto clo = ComponentLoop::Outside;
  const auto cli = ComponentLoop::Inside;
  const auto serial = ParallelGranularity::OverBoxes;
  return {
      {"baseline-CLO", makeBaseline(serial, clo), &baselineBoxSerial},
      {"baseline-CLI", makeBaseline(serial, cli), &baselineBoxSerial},
      {"shiftfuse-CLO", makeShiftFuse(serial, clo), &shiftFuseBoxSerial},
      {"shiftfuse-CLI", makeShiftFuse(serial, cli), &shiftFuseBoxSerial},
      {"blockedwf-CLO-4", makeBlockedWF(4, serial, clo),
       &blockedWFBoxSerial},
      {"blockedwf-CLI-4", makeBlockedWF(4, serial, cli),
       &blockedWFBoxSerial},
      {"overlapped-basic-4",
       makeOverlapped(IntraTileSchedule::Basic, 4, serial, clo),
       &overlappedBoxSerial},
      {"overlapped-fused-4",
       makeOverlapped(IntraTileSchedule::ShiftFuse, 4, serial, clo),
       &overlappedBoxSerial},
  };
}

TEST(PaddedStorage, SerialExecutorsAreBitIdenticalAcrossPitches) {
  // A box whose x-extent is NOT a multiple of the SIMD width, so the
  // padded pitch actually differs from the dense one, with a nonzero
  // origin to exercise the lo-offset arithmetic.
  const Box valid = Box::cube(13, grid::IntVect(-3, 5, 2));
  ASSERT_NE(grid::paddedPitch(valid.grow(kernels::kNumGhost).size(0)),
            valid.grow(kernels::kNumGhost).size(0));
  for (const NamedExec& e : serialExecutors()) {
    SCOPED_TRACE(e.label);
    const FArrayBox padded =
        runWithPitch(e.exec, e.cfg, valid, Pitch::Padded);
    const FArrayBox dense = runWithPitch(e.exec, e.cfg, valid, Pitch::Dense);
    expectBitIdentical(padded, dense, valid, e.label);
  }
}

TEST(PaddedStorage, ParallelExecutorsAreBitIdenticalAcrossPitches) {
  const Box valid = Box::cube(13, grid::IntVect(1, -2, 4));
  const int nThreads = 3;
  const struct {
    const char* label;
    VariantConfig cfg;
    void (*exec)(const VariantConfig&, const FArrayBox&, FArrayBox&,
                 const Box&, WorkspacePool&, int, Real);
  } execs[] = {
      {"baseline-par",
       makeBaseline(ParallelGranularity::WithinBox, ComponentLoop::Outside),
       &baselineBoxParallel},
      {"blockedwf-par-4",
       makeBlockedWF(4, ParallelGranularity::WithinBox,
                     ComponentLoop::Outside),
       &blockedWFBoxParallel},
      {"overlapped-par-4",
       makeOverlapped(IntraTileSchedule::ShiftFuse, 4,
                      ParallelGranularity::WithinBox),
       &overlappedBoxParallel},
  };
  for (const auto& e : execs) {
    SCOPED_TRACE(e.label);
    FArrayBox results[2];
    const Pitch pitches[] = {Pitch::Padded, Pitch::Dense};
    for (int p = 0; p < 2; ++p) {
      FArrayBox phi0(valid.grow(kernels::kNumGhost), kernels::kNumComp,
                     pitches[p]);
      FArrayBox phi1(valid, kernels::kNumComp, pitches[p]);
      kernels::initializeExemplar(phi0, valid);
      phi1.setVal(0.0);
      WorkspacePool pool(nThreads);
      e.exec(e.cfg, phi0, phi1, valid, pool, nThreads, kScale);
      results[p] = std::move(phi1);
    }
    expectBitIdentical(results[0], results[1], valid, e.label);
  }
}

} // namespace
} // namespace fluxdiv::core::detail
