#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "kernels/reference.hpp"

namespace fluxdiv::core {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::FArrayBox;
using grid::LevelData;
using grid::ProblemDomain;
using kernels::kNumComp;
using kernels::kNumGhost;

LevelData makeInitialized(const DisjointBoxLayout& dbl) {
  LevelData phi(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi);
  return phi;
}

TEST(FluxDivRunner, RejectsBadThreadCount) {
  EXPECT_THROW(
      FluxDivRunner(makeBaseline(ParallelGranularity::OverBoxes), 0),
      std::invalid_argument);
}

TEST(FluxDivRunner, RejectsComponentMismatch) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 8);
  LevelData phi0(dbl, kNumComp, kNumGhost);
  LevelData wrong(dbl, 2, kNumGhost);
  FluxDivRunner runner(makeBaseline(ParallelGranularity::OverBoxes), 1);
  EXPECT_THROW(runner.run(phi0, wrong), std::invalid_argument);
  EXPECT_THROW(runner.run(wrong, phi0), std::invalid_argument);
}

TEST(FluxDivRunner, RejectsInsufficientGhosts) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 8);
  LevelData thin(dbl, kNumComp, 1);
  LevelData out(dbl, kNumComp, 1);
  FluxDivRunner runner(makeBaseline(ParallelGranularity::OverBoxes), 1);
  EXPECT_THROW(runner.run(thin, out), std::invalid_argument);
}

TEST(FluxDivRunner, RejectsInvalidTileForBox) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 8);
  LevelData phi0 = makeInitialized(dbl);
  LevelData out(dbl, kNumComp, kNumGhost);
  FluxDivRunner runner(
      makeOverlapped(IntraTileSchedule::Basic, 32,
                     ParallelGranularity::WithinBox),
      1);
  EXPECT_THROW(runner.run(phi0, out), std::invalid_argument);
}

TEST(FluxDivRunner, RunBoxMatchesLevelRun) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 8);
  LevelData phi0 = makeInitialized(dbl);
  LevelData viaLevel(dbl, kNumComp, kNumGhost);
  LevelData viaBox(dbl, kNumComp, kNumGhost);
  FluxDivRunner runner(makeShiftFuse(ParallelGranularity::OverBoxes), 2);
  runner.run(phi0, viaLevel);
  runner.runBox(phi0[0], viaBox[0], phi0.validBox(0));
  EXPECT_EQ(LevelData::maxAbsDiffValid(viaLevel, viaBox), 0.0);
}

TEST(FluxDivRunner, AdviseEnvWarnsButNeverChangesResults) {
  // FLUXDIV_ADVISE=1 runs the static cost model before the first
  // evaluation of each box shape and prints advice to stderr. It must be
  // purely advisory: identical results, no throw.
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 8);
  LevelData phi0 = makeInitialized(dbl);
  LevelData plain(dbl, kNumComp, kNumGhost);
  LevelData advised(dbl, kNumComp, kNumGhost);
  FluxDivRunner runner(makeBaseline(ParallelGranularity::OverBoxes), 1);
  runner.run(phi0, plain);
  ::setenv("FLUXDIV_ADVISE", "1", 1);
  FluxDivRunner advisedRunner(makeBaseline(ParallelGranularity::OverBoxes),
                              1);
  EXPECT_NO_THROW(advisedRunner.run(phi0, advised));
  ::unsetenv("FLUXDIV_ADVISE");
  EXPECT_EQ(LevelData::maxAbsDiffValid(plain, advised), 0.0);
}

TEST(FluxDivRunner, WorkspaceAccountingReflectsTableOne) {
  // Measured per-thread temporary storage must track Table I's analytic
  // footprints: baseline ~ C(N+1)^3 flux; overlapped tiles ~ tile-sized.
  const int n = 32;
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(n)), n);
  LevelData phi0 = makeInitialized(dbl);

  LevelData out1(dbl, kNumComp, kNumGhost);
  FluxDivRunner baseline(makeBaseline(ParallelGranularity::OverBoxes), 1);
  baseline.run(phi0, out1);
  // The flux temporary allocates with the padded x-pitch, so the measured
  // bytes track the padded row length; the analytic C(N+1)^3 shape is
  // otherwise unchanged.
  const double fluxBytes = kNumComp *
                           double(grid::paddedPitch(n + 1)) * (n + 1) *
                           (n + 1) * sizeof(grid::Real);
  EXPECT_NEAR(double(baseline.maxPeakWorkspaceBytes()), fluxBytes,
              0.05 * fluxBytes);

  LevelData out2(dbl, kNumComp, kNumGhost);
  FluxDivRunner ot(
      makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                     ParallelGranularity::WithinBox),
      1);
  ot.run(phi0, out2);
  // Tile-sized: far below the baseline footprint.
  EXPECT_LT(ot.maxPeakWorkspaceBytes(), fluxBytes / 8);
}

TEST(FluxDivRunner, AccumulationComposesAcrossRuns) {
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 8);
  LevelData phi0 = makeInitialized(dbl);
  LevelData once(dbl, kNumComp, kNumGhost);
  LevelData net(dbl, kNumComp, kNumGhost);
  FluxDivRunner runner(makeShiftFuse(ParallelGranularity::OverBoxes), 1);
  runner.run(phi0, once, 1.0);
  runner.run(phi0, net, 1.0);
  runner.run(phi0, net, -1.0); // cancels up to reassociation rounding
  for (std::size_t b = 0; b < net.size(); ++b) {
    for (int c = 0; c < kNumComp; ++c) {
      forEachCell(net.validBox(b), [&](int i, int j, int k) {
        ASSERT_NEAR(net[b](i, j, k, c), 0.0, 1e-13);
      });
    }
  }
  // and `once` holds a single application
  LevelData expected(dbl, kNumComp, kNumGhost);
  kernels::referenceFluxDiv(phi0, expected);
  EXPECT_LT(LevelData::maxAbsDiffValid(once, expected), 1e-12);
}

} // namespace
} // namespace fluxdiv::core
