// White-box tests of the executor internals shared by the schedule
// families (exec_common/exec_fused).

#include <gtest/gtest.h>

#include "core/exec_common.hpp"
#include "core/exec_fused.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::core::detail {
namespace {

TEST(Idx, MatchesFArrayBoxOffsets) {
  const Box b(IntVect(-2, 3, 7), IntVect(5, 9, 12));
  FArrayBox fab(b, 2);
  const Idx idx(fab);
  forEachCell(b, [&](int i, int j, int k) {
    ASSERT_EQ(idx(i, j, k), fab.offset(i, j, k));
  });
  EXPECT_EQ(idx.stride(0), 1);
  EXPECT_EQ(idx.stride(1), fab.strideY());
  EXPECT_EQ(idx.stride(2), fab.strideZ());
}

TEST(Comps, PointersMatchComponents) {
  FArrayBox fab(Box::cube(4), kNumComp);
  const ConstComps cc(fab);
  const MutComps mc(fab);
  for (int c = 0; c < kNumComp; ++c) {
    EXPECT_EQ(cc[c], fab.dataPtr(c));
    EXPECT_EQ(mc[c], fab.dataPtr(c));
  }
}

TEST(FaceSupersetBox, ContainsEveryFaceBox) {
  const Box b = Box::cube(8, IntVect(3, 3, 3));
  const Box super = faceSupersetBox(b);
  for (int d = 0; d < grid::SpaceDim; ++d) {
    EXPECT_TRUE(super.contains(b.faceBox(d)));
  }
  EXPECT_EQ(super.numPts(), 9 * 9 * 9);
}

TEST(PrecomputeFaceVelocity, MatchesDirectEvalFlux1) {
  const Box valid = Box::cube(6);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  kernels::initializeExemplar(phi0, valid);
  FArrayBox vel(faceSupersetBox(valid), 3);
  precomputeFaceVelocity(phi0, vel, valid, 1, 0);

  const Idx ip(phi0);
  for (int d = 0; d < grid::SpaceDim; ++d) {
    const Real* pv = phi0.dataPtr(kernels::velocityComp(d));
    forEachCell(valid.faceBox(d), [&](int i, int j, int k) {
      const Real direct =
          kernels::evalFlux1(pv + ip(i, j, k), ip.stride(d));
      ASSERT_EQ(vel(i, j, k, d), direct)
          << "dir " << d << " face " << i << ',' << j << ',' << k;
    });
  }
}

TEST(PrecomputeFaceVelocity, SlabPartitionCoversExactly) {
  // Multi-worker fill must equal the single-worker fill.
  const Box valid = Box::cube(8);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  kernels::initializeExemplar(phi0, valid);
  FArrayBox velOne(faceSupersetBox(valid), 3);
  FArrayBox velMany(faceSupersetBox(valid), 3);
  precomputeFaceVelocity(phi0, velOne, valid, 1, 0);
  for (int tid = 0; tid < 3; ++tid) {
    precomputeFaceVelocity(phi0, velMany, valid, 3, tid);
  }
  for (int d = 0; d < grid::SpaceDim; ++d) {
    forEachCell(valid.faceBox(d), [&](int i, int j, int k) {
      ASSERT_EQ(velMany(i, j, k, d), velOne(i, j, k, d));
    });
  }
}

TEST(ExecutorsDirect, SerialFamiliesAgreeOnOneBox) {
  // Drive the per-box entry points directly (bypassing the runner) and
  // cross-check the four families against each other.
  const Box valid = Box::cube(10);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  kernels::initializeExemplar(phi0, valid);

  auto runFamily = [&](ScheduleFamily family, IntraTileSchedule intra,
                       ComponentLoop comp, int tile) {
    VariantConfig cfg{family, intra, ParallelGranularity::OverBoxes, comp,
                      tile};
    FArrayBox out(valid, kNumComp);
    Workspace ws;
    switch (family) {
    case ScheduleFamily::SeriesOfLoops:
      baselineBoxSerial(cfg, phi0, out, valid, ws, 1.0);
      break;
    case ScheduleFamily::ShiftFuse:
      shiftFuseBoxSerial(cfg, phi0, out, valid, ws, 1.0);
      break;
    case ScheduleFamily::BlockedWavefront:
      blockedWFBoxSerial(cfg, phi0, out, valid, ws, 1.0);
      break;
    case ScheduleFamily::OverlappedTiles:
      overlappedBoxSerial(cfg, phi0, out, valid, ws, 1.0);
      break;
    }
    return out;
  };

  const FArrayBox ref = runFamily(ScheduleFamily::SeriesOfLoops,
                                  IntraTileSchedule::Basic,
                                  ComponentLoop::Outside, 0);
  const FArrayBox sf = runFamily(ScheduleFamily::ShiftFuse,
                                 IntraTileSchedule::Basic,
                                 ComponentLoop::Inside, 0);
  const FArrayBox wf = runFamily(ScheduleFamily::BlockedWavefront,
                                 IntraTileSchedule::ShiftFuse,
                                 ComponentLoop::Outside, 4);
  const FArrayBox ot = runFamily(ScheduleFamily::OverlappedTiles,
                                 IntraTileSchedule::ShiftFuse,
                                 ComponentLoop::Outside, 4);
  EXPECT_LT(FArrayBox::maxAbsDiff(ref, sf, valid), 1e-12);
  EXPECT_LT(FArrayBox::maxAbsDiff(ref, wf, valid), 1e-12);
  EXPECT_LT(FArrayBox::maxAbsDiff(ref, ot, valid), 1e-12);
}

TEST(ExecutorsDirect, FusedCellBodiesAgreeWithEachOther) {
  // CLI and CLO fused bodies must produce identical accumulations for
  // the same cell when fed the same inputs.
  const Box valid = Box::cube(6);
  FArrayBox phi0(valid.grow(kNumGhost), kNumComp);
  kernels::initializeExemplar(phi0, valid);

  VariantConfig cli{ScheduleFamily::ShiftFuse, IntraTileSchedule::Basic,
                    ParallelGranularity::OverBoxes, ComponentLoop::Inside,
                    0};
  VariantConfig clo = cli;
  clo.comp = ComponentLoop::Outside;

  FArrayBox outCli(valid, kNumComp), outClo(valid, kNumComp);
  Workspace w1, w2;
  shiftFuseBoxSerial(cli, phi0, outCli, valid, w1, 2.5);
  shiftFuseBoxSerial(clo, phi0, outClo, valid, w2, 2.5);
  EXPECT_LT(FArrayBox::maxAbsDiff(outCli, outClo, valid), 1e-12);
}

} // namespace
} // namespace fluxdiv::core::detail
