// LevelExecutor acceptance tests: every policy (sequential / parallel /
// hybrid) must produce BIT-IDENTICAL divF to the box-sequential ordering
// across all four schedule families and both storage pitches, the
// overlapped runStep() must equal the exchange(); run() pair, firstTouch()
// must deliver the Init::Zero contract for deferred allocations, and the
// FLUXDIV_LEVEL_POLICY env override must route FluxDivRunner::run through
// the executor. Under FLUXDIV_SHADOW_CHECK a seeded two-worker race on the
// task pool must trip the shadow detector.

#include "core/exec_level.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/taskpool.hpp"
#include "core/variant.hpp"
#include "grid/box.hpp"
#include "grid/leveldata.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::core {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::Init;
using grid::LevelData;
using grid::Pitch;
using grid::ProblemDomain;
using grid::Real;

/// The four families at a representative configuration each; WithinBox
/// granularity so the parallel policies change the decomposition, not
/// just the OpenMP loop they replace.
std::vector<VariantConfig> representativeFamilies() {
  return {
      makeBaseline(ParallelGranularity::WithinBox),
      makeShiftFuse(ParallelGranularity::WithinBox),
      makeBlockedWF(8, ParallelGranularity::WithinBox,
                    ComponentLoop::Inside),
      makeBlockedWF(8, ParallelGranularity::WithinBox,
                    ComponentLoop::Outside),
      makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                     ParallelGranularity::WithinBox),
  };
}

/// 8-box level (2x2x2 boxes of side 16) — enough boxes that box-parallel
/// and hybrid graphs exercise stealing, small enough to stay fast.
LevelData makeExchangedLevel(Pitch pitch) {
  const ProblemDomain dom(Box::cube(32));
  const DisjointBoxLayout dbl(dom, 16);
  LevelData phi0(dbl, kernels::kNumComp, kernels::kNumGhost, pitch);
  kernels::initializeExemplar(phi0); // fills valid cells + exchange()
  return phi0;
}

/// Evaluate divF over `phi0` under `policy` into a fresh phi1.
LevelData evalPolicy(const VariantConfig& cfg, const LevelData& phi0,
                     LevelPolicy policy, int nThreads, Pitch pitch) {
  LevelData phi1(phi0.layout(), kernels::kNumComp, 0, pitch);
  LevelExecutor exec(cfg, nThreads,
                     LevelExecOptions{policy, /*overlapExchange=*/false});
  exec.run(phi0, phi1);
  return phi1;
}

TEST(LevelExecutor, AllPoliciesBitIdenticalAcrossFamiliesAndPitches) {
  for (const Pitch pitch : {Pitch::Padded, Pitch::Dense}) {
    const LevelData phi0 = makeExchangedLevel(pitch);
    for (const VariantConfig& cfg : representativeFamilies()) {
      const LevelData expected =
          evalPolicy(cfg, phi0, LevelPolicy::BoxSequential, 1, pitch);
      for (const int nThreads : {1, 3}) {
        for (const LevelPolicy policy :
             {LevelPolicy::BoxParallel, LevelPolicy::Hybrid}) {
          const LevelData actual =
              evalPolicy(cfg, phi0, policy, nThreads, pitch);
          EXPECT_EQ(LevelData::maxAbsDiffValid(expected, actual), 0.0)
              << cfg.name() << " / " << levelPolicyName(policy)
              << " / threads=" << nThreads << " / "
              << (pitch == Pitch::Padded ? "padded" : "dense");
        }
      }
    }
  }
}

TEST(LevelExecutor, SequentialPolicyMatchesRunner) {
  const LevelData phi0 = makeExchangedLevel(Pitch::Padded);
  for (const VariantConfig& cfg : representativeFamilies()) {
    LevelData viaRunner(phi0.layout(), kernels::kNumComp, 0);
    FluxDivRunner runner(cfg, 3);
    runner.runLevel(phi0, viaRunner);
    const LevelData viaExec =
        evalPolicy(cfg, phi0, LevelPolicy::BoxSequential, 3, Pitch::Padded);
    EXPECT_EQ(LevelData::maxAbsDiffValid(viaRunner, viaExec), 0.0)
        << cfg.name();
  }
}

TEST(LevelExecutor, RunStepOverlapEqualsExchangeThenRun) {
  const ProblemDomain dom(Box::cube(32));
  const DisjointBoxLayout dbl(dom, 16);
  for (const VariantConfig& cfg : representativeFamilies()) {
    for (const LevelPolicy policy :
         {LevelPolicy::BoxParallel, LevelPolicy::Hybrid}) {
      // Reference: barrier exchange, then evaluate.
      LevelData ref0(dbl, kernels::kNumComp, kernels::kNumGhost);
      kernels::initializeExemplar(ref0);
      LevelData expected(dbl, kernels::kNumComp, 0);
      {
        LevelExecutor exec(cfg, 3,
                           LevelExecOptions{policy, /*overlapExchange=*/false});
        exec.run(ref0, expected);
      }

      // Overlapped: start from stale (zero) ghosts, let runStep fill them
      // as tasks interleaved with interior compute.
      LevelData phi0(dbl, kernels::kNumComp, kernels::kNumGhost);
      kernels::initializeExemplar(phi0);
      for (std::size_t b = 0; b < phi0.size(); ++b) {
        // Clobber the exchanged ghosts so a skipped/short-circuited
        // exchange would be visible in divF.
        for (int c = 0; c < kernels::kNumComp; ++c) {
          grid::FArrayBox& fab = phi0[b];
          const Box valid = phi0.validBox(b);
          Real* p = fab.dataPtr(c);
          grid::forEachCell(fab.box(), [&](int i, int j, int k) {
            if (!valid.contains(grid::IntVect(i, j, k))) {
              p[fab.offset(i, j, k)] = -1.0e30;
            }
          });
        }
      }
      LevelData actual(dbl, kernels::kNumComp, 0);
      LevelExecutor exec(cfg, 3,
                         LevelExecOptions{policy, /*overlapExchange=*/true});
      exec.runStep(phi0, actual);
      EXPECT_EQ(LevelData::maxAbsDiffValid(expected, actual), 0.0)
          << cfg.name() << " / " << levelPolicyName(policy);
      // And the exchange itself must have run: ghosts now match ref0's.
      for (std::size_t b = 0; b < phi0.size(); ++b) {
        EXPECT_EQ(grid::FArrayBox::maxAbsDiff(phi0[b], ref0[b],
                                              phi0[b].box()),
                  0.0)
            << cfg.name() << " ghosts of box " << b;
      }
    }
  }
}

TEST(LevelExecutor, RunStepSequentialPolicyStillExchanges) {
  const ProblemDomain dom(Box::cube(32));
  const DisjointBoxLayout dbl(dom, 16);
  const VariantConfig cfg = makeShiftFuse(ParallelGranularity::WithinBox);

  LevelData ref0(dbl, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(ref0);
  LevelData expected(dbl, kernels::kNumComp, 0);
  FluxDivRunner runner(cfg, 2);
  runner.runLevel(ref0, expected);

  LevelData phi0(dbl, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(phi0);
  LevelData actual(dbl, kernels::kNumComp, 0);
  LevelExecutor exec(cfg, 2, LevelExecOptions{LevelPolicy::BoxSequential});
  exec.runStep(phi0, actual);
  EXPECT_EQ(LevelData::maxAbsDiffValid(expected, actual), 0.0);
}

TEST(LevelExecutor, FirstTouchZeroFillsDeferredLevel) {
  const ProblemDomain dom(Box::cube(32));
  const DisjointBoxLayout dbl(dom, 16);
  LevelData level(dbl, kernels::kNumComp, kernels::kNumGhost, Pitch::Padded,
                  Init::Deferred);
  LevelExecutor exec(makeBaseline(ParallelGranularity::WithinBox), 3);
  exec.firstTouch(level);
  for (std::size_t b = 0; b < level.size(); ++b) {
    const grid::FArrayBox& fab = level[b];
    for (int c = 0; c < fab.nComp(); ++c) {
      const Real* p = fab.dataPtr(c);
      Real maxAbs = 0.0;
      grid::forEachCell(fab.box(), [&](int i, int j, int k) {
        const Real v = p[fab.offset(i, j, k)];
        if (v > maxAbs || -v > maxAbs) {
          maxAbs = v < 0 ? -v : v;
        }
      });
      EXPECT_EQ(maxAbs, 0.0) << "box " << b << " comp " << c;
    }
  }
}

/// Restores (or unsets) an env var on scope exit — the CI matrix runs this
/// binary with FLUXDIV_LEVEL_POLICY already set.
class ScopedEnv {
public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) {
      had_ = true;
      prev_ = prev;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, prev_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

private:
  const char* name_;
  bool had_ = false;
  std::string prev_;
};

TEST(LevelExecutor, EnvOverrideRoutesRunnerThroughExecutor) {
  const LevelData phi0 = makeExchangedLevel(Pitch::Padded);
  const VariantConfig cfg = makeShiftFuse(ParallelGranularity::WithinBox);
  LevelData expected(phi0.layout(), kernels::kNumComp, 0);
  {
    FluxDivRunner runner(cfg, 3);
    runner.runLevel(phi0, expected);
  }
  for (const char* policy : {"parallel", "hybrid"}) {
    ScopedEnv guard("FLUXDIV_LEVEL_POLICY", policy);
    FluxDivRunner runner(cfg, 3);
    LevelData actual(phi0.layout(), kernels::kNumComp, 0);
    runner.run(phi0, actual);
    EXPECT_EQ(LevelData::maxAbsDiffValid(expected, actual), 0.0) << policy;
    EXPECT_GT(runner.maxPeakWorkspaceBytes(), 0u)
        << "delegated executor scratch must be accounted";
  }
}

TEST(LevelExecutor, EnvOverrideRejectsUnknownPolicy) {
  const LevelData phi0 = makeExchangedLevel(Pitch::Padded);
  ScopedEnv guard("FLUXDIV_LEVEL_POLICY", "warp-drive");
  FluxDivRunner runner(makeBaseline(ParallelGranularity::WithinBox), 2);
  LevelData phi1(phi0.layout(), kernels::kNumComp, 0);
  EXPECT_THROW(runner.run(phi0, phi1), std::invalid_argument);
}

TEST(LevelExecutor, ScaleIsHonoredUnderEveryPolicy) {
  const LevelData phi0 = makeExchangedLevel(Pitch::Padded);
  const VariantConfig cfg = makeBaseline(ParallelGranularity::WithinBox);
  const LevelData unit =
      evalPolicy(cfg, phi0, LevelPolicy::BoxSequential, 1, Pitch::Padded);
  for (const LevelPolicy policy :
       {LevelPolicy::BoxParallel, LevelPolicy::Hybrid}) {
    LevelData scaled(phi0.layout(), kernels::kNumComp, 0);
    LevelExecutor exec(cfg, 2, LevelExecOptions{policy, false});
    exec.run(phi0, scaled, 2.0);
    // 2*x is exact in binary floating point: still bit-comparable.
    Real worst = 0.0;
    for (std::size_t b = 0; b < unit.size(); ++b) {
      const Box valid = unit.validBox(b);
      const grid::FArrayBox& u = unit[b];
      const grid::FArrayBox& s = scaled[b];
      for (int c = 0; c < kernels::kNumComp; ++c) {
        const Real* up = u.dataPtr(c);
        const Real* sp = s.dataPtr(c);
        grid::forEachCell(valid, [&](int i, int j, int k) {
          const Real d = sp[s.offset(i, j, k)] - 2.0 * up[u.offset(i, j, k)];
          if (d > worst || -d > worst) {
            worst = d < 0 ? -d : d;
          }
        });
      }
    }
    EXPECT_EQ(worst, 0.0) << levelPolicyName(policy);
  }
}

#ifdef FLUXDIV_SHADOW_CHECK
TEST(LevelExecutorShadow, SeededRaceOnTaskPoolIsDetected) {
  // Two tasks on distinct pool workers write overlapping regions of the
  // same fab in one epoch. The atomic rendezvous blocks each task until
  // the other has started, so a single worker can never run both; the
  // shadow detector must attribute the writes to different workers and
  // flag the overlap.
  grid::FArrayBox fab(Box::cube(8), 1);
  fab.shadowBeginEpoch();
  const Box whole = Box::cube(8);
  const Box half = whole.lowSlab(2, 6); // overlaps `whole` in 8x8x4 cells

  TaskPool pool(2);
  std::atomic<int> arrived{0};
  TaskGraph graph;
  auto body = [&](const Box& region) {
    return [&, region](int) {
      arrived.fetch_add(1);
      while (arrived.load() < 2) {
        // Spin until both tasks are in flight on their own workers.
      }
      fab.shadowRecordWrite(region, 0, 1, TaskPool::currentWorker());
    };
  };
  graph.addTask(body(whole), 0);
  graph.addTask(body(half), 1);
  pool.run(graph);

  EXPECT_GT(fab.shadow().violationCount(), 0u)
      << "overlapping writes from two pool workers must be flagged";
}
#endif

} // namespace
} // namespace fluxdiv::core
