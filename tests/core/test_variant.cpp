#include "core/variant.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fluxdiv::core {
namespace {

TEST(VariantConfig, PaperLegendNames) {
  EXPECT_EQ(makeBaseline(ParallelGranularity::OverBoxes).name(),
            "Baseline-CLO: P>=Box");
  EXPECT_EQ(
      makeBaseline(ParallelGranularity::WithinBox, ComponentLoop::Inside)
          .name(),
      "Baseline-CLI: P<Box");
  EXPECT_EQ(makeShiftFuse(ParallelGranularity::OverBoxes).name(),
            "Shift-Fuse-CLO: P>=Box");
  EXPECT_EQ(makeShiftFuse(ParallelGranularity::WithinBox).name(),
            "Shift-Fuse-CLO-WF: P<Box");
  EXPECT_EQ(makeBlockedWF(16, ParallelGranularity::WithinBox,
                          ComponentLoop::Outside)
                .name(),
            "Blocked WF-CLO-16: P<Box");
  EXPECT_EQ(makeBlockedWF(4, ParallelGranularity::WithinBox,
                          ComponentLoop::Inside)
                .name(),
            "Blocked WF-CLI-4: P<Box");
  EXPECT_EQ(makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                           ParallelGranularity::WithinBox)
                .name(),
            "Shift-Fuse OT-8: P<Box");
  EXPECT_EQ(makeOverlapped(IntraTileSchedule::Basic, 16,
                           ParallelGranularity::OverBoxes)
                .name(),
            "Basic-Sched OT-16: P>=Box");
}

TEST(VariantConfig, ValidityRules) {
  EXPECT_TRUE(makeBaseline(ParallelGranularity::OverBoxes).validFor(16));
  EXPECT_TRUE(makeBlockedWF(16, ParallelGranularity::WithinBox,
                            ComponentLoop::Outside)
                  .validFor(128));
  EXPECT_FALSE(makeBlockedWF(32, ParallelGranularity::WithinBox,
                             ComponentLoop::Outside)
                   .validFor(16));
  VariantConfig tiledZero = makeOverlapped(IntraTileSchedule::Basic, 0,
                                           ParallelGranularity::WithinBox);
  EXPECT_FALSE(tiledZero.validFor(16));
}

TEST(EnumerateVariants, CountMatchesThePaperScale) {
  // The paper prototyped ~30 of 328 possible variants; for 128^3 boxes the
  // registry yields the practical set: 4 baseline + 4 shift-fuse + 16
  // blocked WF + 16 OT (all four tile sizes are < 128).
  const auto all = enumerateVariants(128);
  EXPECT_EQ(all.size(), 40u);
  // Names are unique.
  std::set<std::string> names;
  for (const auto& v : all) {
    EXPECT_TRUE(names.insert(v.name()).second) << "duplicate " << v.name();
    EXPECT_TRUE(v.validFor(128)) << v.name();
  }
}

TEST(EnumerateVariants, SmallBoxesDropLargeTiles) {
  const auto all16 = enumerateVariants(16);
  for (const auto& v : all16) {
    EXPECT_TRUE(v.validFor(16)) << v.name();
    EXPECT_LT(v.tileSize, 16) << v.name();
  }
  // 4 + 4 untiled, tiles {4,8} for 16^3: 8 blocked WF + 8 OT.
  EXPECT_EQ(all16.size(), 24u);
}

TEST(EnumerateVariants, OverlappedTilesAreComponentLoopOutsideOnly) {
  // Sec. IV-E: OT + CLI was dropped because untiled CLI was slower.
  for (const auto& v : enumerateVariants(128)) {
    if (v.family == ScheduleFamily::OverlappedTiles) {
      EXPECT_EQ(v.comp, ComponentLoop::Outside) << v.name();
    }
  }
}

TEST(EnumerateVariants, ContainsThePaperHighlightedSchedules) {
  const auto all = enumerateVariants(128);
  auto has = [&](const std::string& name) {
    for (const auto& v : all) {
      if (v.name() == name) {
        return true;
      }
    }
    return false;
  };
  // Legends of Figs. 10-12.
  EXPECT_TRUE(has("Baseline-CLO: P>=Box"));
  EXPECT_TRUE(has("Shift-Fuse-CLO: P>=Box"));
  EXPECT_TRUE(has("Blocked WF-CLO-16: P<Box"));
  EXPECT_TRUE(has("Blocked WF-CLI-4: P<Box"));
  EXPECT_TRUE(has("Shift-Fuse OT-8: P<Box"));
  EXPECT_TRUE(has("Shift-Fuse OT-16: P>=Box"));
  EXPECT_TRUE(has("Basic-Sched OT-16: P>=Box"));
  EXPECT_TRUE(has("Basic-Sched OT-8: P<Box"));
}

} // namespace
} // namespace fluxdiv::core
