// The central correctness property of the study: every inter-loop
// scheduling variant computes exactly the same flux divergence as the
// naive reference kernel — the schedules differ only in iteration order,
// temporary storage, and recomputation. The sweep runs every registered
// variant over several box sizes and thread counts.

#include <gtest/gtest.h>

#include <sstream>

#include "core/runner.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "kernels/reference.hpp"

namespace fluxdiv::core {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::LevelData;
using grid::ProblemDomain;
using grid::Real;
using kernels::kNumComp;
using kernels::kNumGhost;

constexpr Real kTol = 1e-12;

struct SweepParam {
  VariantConfig cfg;
  int boxSize;
  int nBoxesPerDim;
  int nThreads;
};

std::string paramName(const testing::TestParamInfo<SweepParam>& info) {
  std::ostringstream ss;
  ss << info.param.cfg.name() << "_N" << info.param.boxSize << "_B"
     << info.param.nBoxesPerDim << "_T" << info.param.nThreads;
  std::string s = ss.str();
  for (char& ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) {
      ch = '_';
    }
  }
  return s;
}

std::vector<SweepParam> makeSweep() {
  std::vector<SweepParam> params;
  // Single-box and multi-box domains, serial and oversubscribed-parallel.
  const struct {
    int boxSize;
    int nBoxesPerDim;
  } shapes[] = {{8, 1}, {8, 2}, {16, 1}, {16, 2}, {32, 1}};
  for (const auto& shape : shapes) {
    for (const auto& cfg : enumerateVariants(shape.boxSize)) {
      for (int threads : {1, 3}) {
        params.push_back({cfg, shape.boxSize, shape.nBoxesPerDim, threads});
      }
    }
  }
  return params;
}

class VariantEquivalence : public testing::TestWithParam<SweepParam> {};

TEST_P(VariantEquivalence, MatchesReferenceKernel) {
  const SweepParam& p = GetParam();
  const int domSide = p.boxSize * p.nBoxesPerDim;
  ProblemDomain dom(Box::cube(domSide));
  DisjointBoxLayout dbl(dom, p.boxSize);
  LevelData phi0(dbl, kNumComp, kNumGhost);
  LevelData expected(dbl, kNumComp, kNumGhost);
  LevelData actual(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi0);

  kernels::referenceFluxDiv(phi0, expected);
  FluxDivRunner runner(p.cfg, p.nThreads);
  runner.run(phi0, actual);

  EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), kTol)
      << p.cfg.name();
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantEquivalence,
                         testing::ValuesIn(makeSweep()), paramName);

// Non-cubic boxes and tile sizes that do not divide the box exercise the
// clipped-tile paths.
TEST(VariantEquivalenceEdge, NonDividingTileSizes) {
  ProblemDomain dom(Box::cube(12));
  DisjointBoxLayout dbl(dom, 12);
  LevelData phi0(dbl, kNumComp, kNumGhost);
  LevelData expected(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi0);
  kernels::referenceFluxDiv(phi0, expected);

  for (auto par :
       {ParallelGranularity::OverBoxes, ParallelGranularity::WithinBox}) {
    for (auto family : {ScheduleFamily::BlockedWavefront,
                        ScheduleFamily::OverlappedTiles}) {
      VariantConfig cfg;
      cfg.family = family;
      cfg.intra = IntraTileSchedule::ShiftFuse;
      cfg.par = par;
      cfg.comp = ComponentLoop::Outside;
      cfg.tileSize = 5; // 12 = 5 + 5 + 2: clipped edge tiles
      LevelData actual(dbl, kNumComp, kNumGhost);
      FluxDivRunner runner(cfg, 2);
      runner.run(phi0, actual);
      EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), kTol)
          << cfg.name();
    }
  }
}

TEST(VariantEquivalenceEdge, AnisotropicDomain) {
  ProblemDomain dom(grid::Box(grid::IntVect::zero(),
                              grid::IntVect(15, 7, 23)));
  DisjointBoxLayout dbl(dom, grid::IntVect(8, 8, 8));
  LevelData phi0(dbl, kNumComp, kNumGhost);
  LevelData expected(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi0);
  kernels::referenceFluxDiv(phi0, expected);
  for (const auto& cfg : enumerateVariants(8)) {
    LevelData actual(dbl, kNumComp, kNumGhost);
    FluxDivRunner runner(cfg, 2);
    runner.run(phi0, actual);
    EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), kTol)
        << cfg.name();
  }
}

TEST(VariantEquivalenceEdge, ScalePropagatesToAllVariants) {
  ProblemDomain dom(Box::cube(8));
  DisjointBoxLayout dbl(dom, 8);
  LevelData phi0(dbl, kNumComp, kNumGhost);
  LevelData expected(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi0);
  kernels::referenceFluxDiv(phi0, expected, -0.25);
  for (const auto& cfg : enumerateVariants(8)) {
    LevelData actual(dbl, kNumComp, kNumGhost);
    FluxDivRunner runner(cfg, 1);
    runner.run(phi0, actual, -0.25);
    EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), kTol)
        << cfg.name();
  }
}

TEST(VariantEquivalenceEdge, ResultsIndependentOfThreadCount) {
  // Determinism: the fused/wavefront/tiled schedules must not change the
  // floating-point result with the team size.
  ProblemDomain dom(Box::cube(16));
  DisjointBoxLayout dbl(dom, 16);
  LevelData phi0(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi0);
  for (const auto& cfg : enumerateVariants(16)) {
    LevelData t1(dbl, kNumComp, kNumGhost);
    LevelData t4(dbl, kNumComp, kNumGhost);
    FluxDivRunner(cfg, 1).run(phi0, t1);
    FluxDivRunner(cfg, 4).run(phi0, t4);
    EXPECT_EQ(LevelData::maxAbsDiffValid(t1, t4), 0.0) << cfg.name();
  }
}

} // namespace
} // namespace fluxdiv::core
