// Additional edge-condition equivalence checks beyond the main TEST_P
// sweep: extra ghost layers, degenerate tile counts, zero scale, runner
// reuse across problems, and the extension axes combined.

#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "kernels/reference.hpp"

namespace fluxdiv::core {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::LevelData;
using grid::ProblemDomain;
using kernels::kNumComp;
using kernels::kNumGhost;

TEST(EquivalenceEdge, ExtraGhostLayersAreHarmless) {
  // Frameworks often carry more ghosts than one operator needs (the
  // paper: "between two and five ghost cells are required"). Variants
  // must work with any nghost >= kNumGhost.
  ProblemDomain dom(Box::cube(16));
  DisjointBoxLayout dbl(dom, 8);
  for (int nghost : {2, 3, 5}) {
    LevelData phi0(dbl, kNumComp, nghost);
    LevelData expected(dbl, kNumComp, nghost);
    kernels::initializeExemplar(phi0);
    kernels::referenceFluxDiv(phi0, expected);
    for (const auto& cfg : {
             makeBaseline(ParallelGranularity::WithinBox),
             makeShiftFuse(ParallelGranularity::WithinBox,
                           ComponentLoop::Inside),
             makeBlockedWF(4, ParallelGranularity::WithinBox,
                           ComponentLoop::Outside),
             makeOverlapped(IntraTileSchedule::ShiftFuse, 4,
                            ParallelGranularity::WithinBox),
         }) {
      LevelData actual(dbl, kNumComp, nghost);
      FluxDivRunner runner(cfg, 2);
      runner.run(phi0, actual);
      EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), 1e-12)
          << cfg.name() << " nghost=" << nghost;
    }
  }
}

TEST(EquivalenceEdge, TileEqualToBoxDegeneratesGracefully) {
  // tileSize == boxSize: a single tile per box. OT then equals its
  // intra-tile schedule; blocked WF has a single-front wavefront.
  ProblemDomain dom(Box::cube(8));
  DisjointBoxLayout dbl(dom, 8);
  LevelData phi0(dbl, kNumComp, kNumGhost);
  LevelData expected(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi0);
  kernels::referenceFluxDiv(phi0, expected);
  for (auto family : {ScheduleFamily::BlockedWavefront,
                      ScheduleFamily::OverlappedTiles}) {
    VariantConfig cfg;
    cfg.family = family;
    cfg.intra = IntraTileSchedule::ShiftFuse;
    cfg.par = ParallelGranularity::WithinBox;
    cfg.comp = family == ScheduleFamily::BlockedWavefront
                   ? ComponentLoop::Inside
                   : ComponentLoop::Outside;
    cfg.tileSize = 8;
    ASSERT_TRUE(cfg.validFor(8));
    LevelData actual(dbl, kNumComp, kNumGhost);
    FluxDivRunner runner(cfg, 4);
    runner.run(phi0, actual);
    EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), 1e-12)
        << cfg.name();
  }
}

TEST(EquivalenceEdge, ZeroScaleIsExactNoOp) {
  ProblemDomain dom(Box::cube(8));
  DisjointBoxLayout dbl(dom, 8);
  LevelData phi0(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi0);
  for (const auto& cfg : enumerateVariants(8)) {
    LevelData out(dbl, kNumComp, kNumGhost);
    FluxDivRunner runner(cfg, 2);
    runner.run(phi0, out, 0.0);
    for (std::size_t b = 0; b < out.size(); ++b) {
      for (int c = 0; c < kNumComp; ++c) {
        forEachCell(out.validBox(b), [&](int i, int j, int k) {
          ASSERT_EQ(out[b](i, j, k, c), 0.0) << cfg.name();
        });
      }
    }
  }
}

TEST(EquivalenceEdge, RunnerReusableAcrossProblemShapes) {
  // The same runner instance (with its grown workspaces) must stay
  // correct when applied to a different box size.
  FluxDivRunner runner(
      makeOverlapped(IntraTileSchedule::Basic, 4,
                     ParallelGranularity::WithinBox),
      2);
  for (int boxSide : {16, 8, 12}) {
    ProblemDomain dom(Box::cube(boxSide));
    DisjointBoxLayout dbl(dom, boxSide);
    LevelData phi0(dbl, kNumComp, kNumGhost);
    LevelData expected(dbl, kNumComp, kNumGhost);
    LevelData actual(dbl, kNumComp, kNumGhost);
    kernels::initializeExemplar(phi0);
    kernels::referenceFluxDiv(phi0, expected);
    runner.run(phi0, actual);
    EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), 1e-12)
        << "box " << boxSide;
  }
}

TEST(EquivalenceEdge, AllExtensionAxesCombined) {
  // Hybrid granularity + pencil aspect + Morton order, multi-box.
  ProblemDomain dom(Box::cube(16));
  DisjointBoxLayout dbl(dom, 8);
  LevelData phi0(dbl, kNumComp, kNumGhost);
  LevelData expected(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi0);
  kernels::referenceFluxDiv(phi0, expected);
  VariantConfig cfg = makeOverlapped(IntraTileSchedule::ShiftFuse, 4,
                                     ParallelGranularity::HybridBoxTile);
  cfg.aspect = TileAspect::Pencil;
  cfg.order = TileOrder::Morton;
  LevelData actual(dbl, kNumComp, kNumGhost);
  FluxDivRunner runner(cfg, 3);
  runner.run(phi0, actual);
  EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), 1e-12);
}

TEST(EquivalenceEdge, ManyThreadsOnTinyBoxes) {
  // More threads than work at every granularity must stay correct.
  ProblemDomain dom(Box::cube(8));
  DisjointBoxLayout dbl(dom, 4); // boxes smaller than some tile sizes
  LevelData phi0(dbl, kNumComp, kNumGhost);
  LevelData expected(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(phi0);
  kernels::referenceFluxDiv(phi0, expected);
  for (const auto& cfg : enumerateVariants(4)) {
    LevelData actual(dbl, kNumComp, kNumGhost);
    FluxDivRunner runner(cfg, 16);
    runner.run(phi0, actual);
    EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), 1e-12)
        << cfg.name();
  }
}

} // namespace
} // namespace fluxdiv::core
