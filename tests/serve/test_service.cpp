// End-to-end tests of the throughput service (src/serve): workload spec
// parsing, bit-identity of every concurrently-admitted instance against
// its solo StepGraphExecutor run across schemes x fuse modes x policies,
// admission through the TuneDB (cold = cost-model prior + one measurement,
// warm = zero re-tunes), and the report counters.

#include "serve/solve_service.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "solvers/rhs.hpp"

namespace fluxdiv::serve {
namespace {

using grid::LevelData;

/// Solo reference: the same spec advanced by a private TimeIntegrator
/// (own StepGraphExecutor, own pool) with the same within-box schedule.
LevelData soloSolve(const InstanceSpec& spec, const core::VariantConfig& cfg,
                    int threads, core::StepFuse fuse,
                    core::LevelPolicy policy) {
  const grid::DisjointBoxLayout dbl = specLayout(spec);
  LevelData u(dbl, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(u);
  solvers::FluxDivRhs rhs(cfg, threads);
  solvers::TimeIntegrator integ(spec.scheme, dbl);
  integ.setStepFuse(fuse);
  integ.setLevelPolicy(policy);
  integ.advanceSteps(u, spec.dt, rhs, spec.steps);
  return u;
}

InstanceSpec pinnedSpec(const std::string& name, solvers::Scheme scheme,
                        int boxSize, int nBoxes, core::StepFuse fuse,
                        core::LevelPolicy policy, int steps = 2) {
  InstanceSpec spec;
  spec.name = name;
  spec.scheme = scheme;
  spec.boxSize = boxSize;
  spec.nBoxes = nBoxes;
  spec.steps = steps;
  spec.autoFuse = false;
  spec.fuse = fuse;
  spec.autoPolicy = false;
  spec.policy = policy;
  return spec;
}

TEST(Workload, ParsesNamesAndKeyValueTokens) {
  const InstanceSpec spec = parseInstanceSpec(
      "burst0 scheme=ssprk3 box=8 nboxes=3 steps=5 dt=2e-4 weight=3 "
      "fuse=commavoid policy=hybrid");
  EXPECT_EQ(spec.name, "burst0");
  EXPECT_EQ(spec.scheme, solvers::Scheme::SSPRK3);
  EXPECT_EQ(spec.boxSize, 8);
  EXPECT_EQ(spec.nBoxes, 3);
  EXPECT_EQ(spec.steps, 5);
  EXPECT_DOUBLE_EQ(spec.dt, 2e-4);
  EXPECT_EQ(spec.weight, 3);
  EXPECT_FALSE(spec.autoFuse);
  EXPECT_EQ(spec.fuse, core::StepFuse::CommAvoid);
  EXPECT_FALSE(spec.autoPolicy);
  EXPECT_EQ(spec.policy, core::LevelPolicy::Hybrid);

  const InstanceSpec dflt = parseInstanceSpec("plain fuse=auto");
  EXPECT_TRUE(dflt.autoFuse);
  EXPECT_TRUE(dflt.autoPolicy);

  EXPECT_THROW(parseInstanceSpec("x scheme=rk9"), std::invalid_argument);
  EXPECT_THROW(parseInstanceSpec("x box=0"), std::invalid_argument);
  EXPECT_THROW(parseInstanceSpec("x bogus=1"), std::invalid_argument);
  EXPECT_THROW(parseInstanceSpec("scheme=rk4"), std::invalid_argument);
}

TEST(Workload, StreamSkipsCommentsAndBlankLines) {
  std::istringstream in("# a workload\n"
                        "\n"
                        "a scheme=rk4 box=8 nboxes=2\n"
                        "b scheme=euler box=8 nboxes=1 # trailing note\n");
  const std::vector<InstanceSpec> specs = parseWorkload(in);
  ASSERT_EQ(specs.size(), 2U);
  EXPECT_EQ(specs[0].name, "a");
  EXPECT_EQ(specs[1].scheme, solvers::Scheme::ForwardEuler);
}

TEST(SolveService, SingleInstanceBitIdenticalToSolo) {
  for (const core::StepFuse fuse :
       {core::StepFuse::Staged, core::StepFuse::Fused,
        core::StepFuse::CommAvoid}) {
    const InstanceSpec spec =
        pinnedSpec("one", solvers::Scheme::RK4, 8, 2, fuse,
                   core::LevelPolicy::BoxParallel);
    ServiceOptions opts;
    opts.threads = 3;
    SolveService service(opts);
    LevelData u(specLayout(spec), kernels::kNumComp, kernels::kNumGhost);
    kernels::initializeExemplar(u);
    service.run({spec}, {&u});
    const LevelData ref = soloSolve(spec, opts.cfg, 2, fuse,
                                    core::LevelPolicy::BoxParallel);
    EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u), 0.0)
        << core::stepFuseName(fuse);
  }
}

TEST(SolveService, ConcurrentInstancesBitIdenticalToSoloAcrossSchemes) {
  // The acceptance matrix: schemes x fuse modes x policies admitted
  // together into one pool, every solution compared bit-for-bit with its
  // solo run.
  std::vector<InstanceSpec> specs;
  specs.push_back(pinnedSpec("fe", solvers::Scheme::ForwardEuler, 8, 3,
                             core::StepFuse::Fused,
                             core::LevelPolicy::BoxParallel));
  specs.push_back(pinnedSpec("mp", solvers::Scheme::Midpoint, 8, 2,
                             core::StepFuse::Staged,
                             core::LevelPolicy::Hybrid));
  specs.push_back(pinnedSpec("s3", solvers::Scheme::SSPRK3, 8, 2,
                             core::StepFuse::CommAvoid,
                             core::LevelPolicy::BoxParallel));
  specs.push_back(pinnedSpec("r4", solvers::Scheme::RK4, 16, 1,
                             core::StepFuse::Fused,
                             core::LevelPolicy::Hybrid));
  specs.push_back(pinnedSpec("r4seq", solvers::Scheme::RK4, 8, 2,
                             core::StepFuse::Staged,
                             core::LevelPolicy::BoxSequential));

  ServiceOptions opts;
  opts.threads = 4;
  SolveService service(opts);
  std::vector<std::unique_ptr<LevelData>> owned;
  std::vector<LevelData*> states;
  for (const InstanceSpec& spec : specs) {
    owned.push_back(std::make_unique<LevelData>(
        specLayout(spec), kernels::kNumComp, kernels::kNumGhost));
    kernels::initializeExemplar(*owned.back());
    states.push_back(owned.back().get());
  }
  const ServiceReport report = service.run(specs, states);

  ASSERT_EQ(report.instances.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const LevelData ref =
        soloSolve(specs[i], opts.cfg, 2, specs[i].fuse, specs[i].policy);
    EXPECT_EQ(LevelData::maxAbsDiffValid(ref, *states[i]), 0.0)
        << specs[i].name;
    EXPECT_GT(report.instances[i].domain.executed, 0U) << specs[i].name;
    EXPECT_GT(report.instances[i].latencySeconds, 0.0) << specs[i].name;
  }
  EXPECT_GT(report.tasksExecuted, 0U);
  EXPECT_GE(report.submissions, specs.size());
  EXPECT_GT(report.solvesPerSec, 0.0);
  EXPECT_GE(report.poolUtilization, 0.0);
  EXPECT_LE(report.poolUtilization, 1.0 + 1e-9);
  EXPECT_GE(report.latency.p99, report.latency.p50);
}

TEST(SolveService, AdmissionWindowStillCompletesEverything) {
  std::vector<InstanceSpec> specs;
  for (int i = 0; i < 5; ++i) {
    specs.push_back(pinnedSpec("w" + std::to_string(i),
                               solvers::Scheme::Midpoint, 8, 2,
                               core::StepFuse::Fused,
                               core::LevelPolicy::BoxParallel, 1));
  }
  ServiceOptions opts;
  opts.threads = 2;
  opts.maxConcurrent = 2;
  SolveService service(opts);
  const ServiceReport report = service.run(specs);
  ASSERT_EQ(report.instances.size(), specs.size());
  for (const InstanceReport& r : report.instances) {
    EXPECT_GT(r.domain.executed, 0U) << r.name;
  }
}

TEST(SolveService, RepeatTrafficReusesCapturedGraphs) {
  // Same service, second run over the same shapes: the per-instance
  // executors are new (admission-scoped), but the pool and domains are
  // reused and nothing deadlocks; executor-level graph reuse is covered
  // by the StepGraph tests, service-level reuse by the cacheHits counter
  // when an instance advances multiple dispatches.
  const InstanceSpec spec =
      pinnedSpec("rep", solvers::Scheme::Midpoint, 8, 2,
                 core::StepFuse::Staged, core::LevelPolicy::BoxParallel, 3);
  ServiceOptions opts;
  opts.threads = 2;
  SolveService service(opts);
  const ServiceReport r1 = service.run({spec});
  const ServiceReport r2 = service.run({spec});
  ASSERT_EQ(r1.instances.size(), 1U);
  ASSERT_EQ(r2.instances.size(), 1U);
  // Staged, 3 steps: dispatches after the first reuse the captured
  // per-stage graphs.
  EXPECT_GT(r1.instances[0].cacheHits + r2.instances[0].cacheHits, 0U);
}

TEST(SolveService, SecondRunOverUnchangedWorkloadNeverRetunes) {
  std::vector<InstanceSpec> specs;
  InstanceSpec a;
  a.name = "auto0";
  a.scheme = solvers::Scheme::RK4;
  a.boxSize = 8;
  a.nBoxes = 2;
  a.steps = 1;
  specs.push_back(a);
  InstanceSpec b = a;
  b.name = "auto1";
  b.scheme = solvers::Scheme::Midpoint;
  specs.push_back(b);
  InstanceSpec c = a; // same key as a: one tune covers both
  c.name = "auto2";
  specs.push_back(c);

  tuner::TuneDB db(tuner::MachineSignature::host());
  ServiceOptions opts;
  opts.threads = 2;
  opts.tunedb = &db;
  SolveService service(opts);

  const ServiceReport cold = service.run(specs);
  EXPECT_GT(cold.retunes, 0U) << "cold keys must be tuned once";
  EXPECT_LE(cold.retunes, specs.size());
  EXPECT_EQ(db.size(), 2U) << "two distinct keys measured";

  const ServiceReport warm = service.run(specs);
  EXPECT_EQ(warm.retunes, 0U)
      << "unchanged workload must be admitted entirely from the TuneDB";
  for (const InstanceReport& r : warm.instances) {
    EXPECT_FALSE(r.tunedFromPrior) << r.name;
  }
  EXPECT_GE(db.counters().hits, specs.size());
}

TEST(SolveService, TunedAdmissionStillBitIdenticalToSolo) {
  // Auto-tuned knobs are reported back, and the solve they produce is
  // bit-identical to a solo run under the same (reported) knobs.
  InstanceSpec spec;
  spec.name = "tuned";
  spec.scheme = solvers::Scheme::SSPRK3;
  spec.boxSize = 8;
  spec.nBoxes = 2;
  spec.steps = 2;

  tuner::TuneDB db(tuner::MachineSignature::host());
  ServiceOptions opts;
  opts.threads = 3;
  opts.tunedb = &db;
  SolveService service(opts);
  LevelData u(specLayout(spec), kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(u);
  const ServiceReport report = service.run({spec}, {&u});
  ASSERT_EQ(report.instances.size(), 1U);
  const LevelData ref = soloSolve(spec, opts.cfg, 2,
                                  report.instances[0].fuse,
                                  report.instances[0].policy);
  EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u), 0.0);
}

TEST(SolveService, ReportPrinterMentionsEveryInstance) {
  const InstanceSpec spec =
      pinnedSpec("printed", solvers::Scheme::ForwardEuler, 8, 1,
                 core::StepFuse::Fused, core::LevelPolicy::BoxParallel, 1);
  ServiceOptions opts;
  opts.threads = 1;
  SolveService service(opts);
  const ServiceReport report = service.run({spec});
  std::ostringstream os;
  printServiceReport(os, report);
  EXPECT_NE(os.str().find("printed"), std::string::npos);
  EXPECT_NE(os.str().find("solves/s"), std::string::npos);
}

} // namespace
} // namespace fluxdiv::serve
