#include "amr/interp.hpp"

#include <gtest/gtest.h>

namespace fluxdiv::amr {
namespace {

TEST(BoxRefinement, RefineCoarsenRoundTrip) {
  const Box coarse(IntVect(1, 2, 3), IntVect(4, 5, 6));
  const Box fine = refine(coarse, 2);
  EXPECT_EQ(fine.lo(), IntVect(2, 4, 6));
  EXPECT_EQ(fine.hi(), IntVect(9, 11, 13));
  EXPECT_EQ(fine.numPts(), coarse.numPts() * 8);
  EXPECT_EQ(coarsen(fine, 2), coarse);
}

TEST(BoxRefinement, RefineByOneIsIdentity) {
  const Box b = Box::cube(8, IntVect(-4, 0, 4));
  EXPECT_EQ(refine(b, 1), b);
  EXPECT_EQ(coarsen(b, 1), b);
}

TEST(BoxRefinement, CoarsenRejectsMisalignedBoxes) {
  EXPECT_THROW((void)coarsen(Box(IntVect(1, 0, 0), IntVect(4, 3, 3)), 2),
               std::invalid_argument);
}

TEST(BoxRefinement, CoarsenIndexHandlesNegatives) {
  EXPECT_EQ(coarsenIndex(IntVect(-1, -2, -4), 2), IntVect(-1, -1, -2));
  EXPECT_EQ(coarsenIndex(IntVect(3, 0, 5), 2), IntVect(1, 0, 2));
  EXPECT_EQ(coarsenIndex(IntVect(-3, 7, -8), 4), IntVect(-1, 1, -2));
}

TEST(Prolongation, ConstantInjectionCopiesParents) {
  const Box coarse = Box::cube(4);
  FArrayBox cf(coarse, 1);
  forEachCell(coarse, [&](int i, int j, int k) {
    cf(i, j, k, 0) = i + 10.0 * j + 100.0 * k;
  });
  const Box fine = refine(coarse, 2);
  FArrayBox ff(fine, 1);
  prolongConstant(cf, ff, fine, 2);
  EXPECT_EQ(ff(0, 0, 0, 0), cf(0, 0, 0, 0));
  EXPECT_EQ(ff(1, 1, 1, 0), cf(0, 0, 0, 0));
  EXPECT_EQ(ff(7, 6, 5, 0), cf(3, 3, 2, 0));
}

TEST(Prolongation, LinearIsExactForLinearFields) {
  const Box coarse = Box::cube(6).grow(1); // slopes need a halo
  FArrayBox cf(coarse, 1);
  auto linear = [](double x, double y, double z) {
    return 2.0 * x - 3.0 * y + 0.5 * z + 7.0;
  };
  forEachCell(coarse, [&](int i, int j, int k) {
    cf(i, j, k, 0) = linear(i + 0.5, j + 0.5, k + 0.5);
  });
  const int ratio = 2;
  const Box fineRegion = refine(Box::cube(6), ratio);
  FArrayBox ff(fineRegion, 1);
  prolongLinear(cf, ff, fineRegion, ratio);
  forEachCell(fineRegion, [&](int i, int j, int k) {
    // Fine cell centers in coarse coordinates: (i + 1/2) / ratio.
    const double expect = linear((i + 0.5) / ratio, (j + 0.5) / ratio,
                                 (k + 0.5) / ratio);
    ASSERT_NEAR(ff(i, j, k, 0), expect, 1e-12)
        << i << ',' << j << ',' << k;
  });
}

TEST(Prolongation, LinearPreservesParentAverages) {
  const Box coarseInterior = Box::cube(4);
  FArrayBox cf(coarseInterior.grow(1), 1);
  forEachCell(cf.box(), [&](int i, int j, int k) {
    cf(i, j, k, 0) = 1.0 + 0.3 * i - 0.2 * j * j + 0.05 * k * i;
  });
  const int ratio = 2;
  const Box fine = refine(coarseInterior, ratio);
  FArrayBox ff(fine, 1);
  prolongLinear(cf, ff, fine, ratio);
  // Average the children back: must equal the parent exactly (the slope
  // contributions cancel by symmetry).
  FArrayBox back(coarseInterior, 1);
  restrictAverage(ff, back, coarseInterior, ratio);
  EXPECT_LT(FArrayBox::maxAbsDiff(back, cf, coarseInterior), 1e-12);
}

TEST(Restriction, AverageOfConstantIsConstant) {
  const Box coarse = Box::cube(3);
  const Box fine = refine(coarse, 4);
  FArrayBox ff(fine, 2);
  ff.setVal(2.5);
  FArrayBox cf(coarse, 2);
  restrictAverage(ff, cf, coarse, 4);
  forEachCell(coarse, [&](int i, int j, int k) {
    ASSERT_EQ(cf(i, j, k, 0), 2.5);
    ASSERT_EQ(cf(i, j, k, 1), 2.5);
  });
}

TEST(Restriction, ConservesTheIntegral) {
  // sum_fine = ratio^3 * sum_coarse after restriction (volume weights on
  // a uniform grid) — the discrete conservation property.
  const Box coarse = Box::cube(4);
  const int ratio = 2;
  const Box fine = refine(coarse, ratio);
  FArrayBox ff(fine, 1);
  forEachCell(fine, [&](int i, int j, int k) {
    ff(i, j, k, 0) = 0.1 * i + 0.01 * j * k + ((i ^ j ^ k) & 3);
  });
  FArrayBox cf(coarse, 1);
  restrictAverage(ff, cf, coarse, ratio);
  const Real fineSum = ff.sum(fine, 0);
  const Real coarseSum = cf.sum(coarse, 0);
  EXPECT_NEAR(fineSum, coarseSum * ratio * ratio * ratio, 1e-9);
}

TEST(Transfer, RestrictionOfConstantProlongationIsIdentity) {
  const Box coarse = Box::cube(5);
  FArrayBox cf(coarse, 1);
  forEachCell(coarse, [&](int i, int j, int k) {
    cf(i, j, k, 0) = i * j + k + 0.25;
  });
  for (int ratio : {2, 3, 4}) {
    const Box fine = refine(coarse, ratio);
    FArrayBox ff(fine, 1);
    prolongConstant(cf, ff, fine, ratio);
    FArrayBox back(coarse, 1);
    restrictAverage(ff, back, coarse, ratio);
    EXPECT_LT(FArrayBox::maxAbsDiff(back, cf, coarse), 1e-12)
        << "ratio " << ratio;
  }
}

} // namespace
} // namespace fluxdiv::amr
