#include "solvers/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::solvers {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::LevelData;
using grid::ProblemDomain;
using grid::Real;
using kernels::kNumComp;
using kernels::kNumGhost;

DisjointBoxLayout smallLayout(int n = 16, int box = 8) {
  return DisjointBoxLayout(ProblemDomain(Box::cube(n)), box);
}

LevelData initialState(const DisjointBoxLayout& dbl) {
  LevelData u(dbl, kNumComp, kNumGhost);
  kernels::initializeExemplar(u);
  return u;
}

Real totalOf(const LevelData& u, int c) {
  Real total = 0.0;
  for (std::size_t b = 0; b < u.size(); ++b) {
    total += u[b].sum(u.validBox(b), c);
  }
  return total;
}

TEST(LevelOps, CopyValidAndAddScaled) {
  auto dbl = smallLayout();
  LevelData a = initialState(dbl);
  LevelData b(dbl, kNumComp, kNumGhost);
  copyValid(a, b);
  EXPECT_EQ(LevelData::maxAbsDiffValid(a, b), 0.0);
  addScaled(b, a, 1.0); // b = 2a
  for (std::size_t i = 0; i < a.size(); ++i) {
    forEachCell(a.validBox(i), [&](int x, int y, int z) {
      ASSERT_EQ(b[i](x, y, z, 0), 2.0 * a[i](x, y, z, 0));
    });
  }
}

TEST(TimeIntegrator, SchemeOrderConstants) {
  EXPECT_EQ(schemeOrder(Scheme::ForwardEuler), 1);
  EXPECT_EQ(schemeOrder(Scheme::Midpoint), 2);
  EXPECT_EQ(schemeOrder(Scheme::SSPRK3), 3);
  EXPECT_EQ(schemeOrder(Scheme::RK4), 4);
}

TEST(LevelOps, ScaleValid) {
  auto dbl = smallLayout();
  LevelData a = initialState(dbl);
  LevelData b = initialState(dbl);
  scaleValid(b, -2.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    forEachCell(a.validBox(i), [&](int x, int y, int z) {
      ASSERT_EQ(b[i](x, y, z, 1), -2.0 * a[i](x, y, z, 1));
    });
  }
}

TEST(TimeIntegrator, EulerStepMatchesManualUpdate) {
  auto dbl = smallLayout();
  LevelData u = initialState(dbl);
  LevelData expected = initialState(dbl);

  FluxDivRhs rhs(core::makeShiftFuse(core::ParallelGranularity::OverBoxes),
                 2);
  TimeIntegrator euler(Scheme::ForwardEuler, dbl);
  const Real dt = 0.01;
  euler.advance(u, dt, rhs);

  // Manual: expected += dt * (-div F(expected)).
  LevelData k(dbl, kNumComp, kNumGhost);
  FluxDivRhs rhs2(
      core::makeShiftFuse(core::ParallelGranularity::OverBoxes), 2);
  rhs2(expected, k);
  addScaled(expected, k, dt);
  EXPECT_LT(LevelData::maxAbsDiffValid(u, expected), 1e-14);
}

TEST(TimeIntegrator, AllSchemesConserve) {
  auto dbl = smallLayout();
  for (Scheme scheme : {Scheme::ForwardEuler, Scheme::Midpoint,
                        Scheme::SSPRK3, Scheme::RK4}) {
    LevelData u = initialState(dbl);
    const Real before = totalOf(u, 0);
    FluxDivRhs rhs(
        core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 4,
                             core::ParallelGranularity::WithinBox),
        2);
    TimeIntegrator integ(scheme, dbl);
    for (int s = 0; s < 3; ++s) {
      integ.advance(u, 0.05, rhs);
    }
    EXPECT_NEAR(totalOf(u, 0), before, 1e-9)
        << "scheme order " << schemeOrder(scheme);
  }
}

TEST(TimeIntegrator, SchemesAgreeAtSmallDt) {
  // One tiny step: all schemes converge to the same limit; higher-order
  // pairs must sit closer to each other than to Euler.
  auto dbl = smallLayout();
  const Real dt = 1e-3;
  LevelData euler = initialState(dbl);
  LevelData mid = initialState(dbl);
  LevelData rk4 = initialState(dbl);
  FluxDivRhs rhs(core::makeBaseline(core::ParallelGranularity::OverBoxes),
                 1);
  TimeIntegrator(Scheme::ForwardEuler, dbl).advance(euler, dt, rhs);
  TimeIntegrator(Scheme::Midpoint, dbl).advance(mid, dt, rhs);
  TimeIntegrator(Scheme::RK4, dbl).advance(rk4, dt, rhs);
  const Real dEulerMid = LevelData::maxAbsDiffValid(euler, mid);
  const Real dMidRk4 = LevelData::maxAbsDiffValid(mid, rk4);
  EXPECT_GT(dEulerMid, 0.0);
  EXPECT_LT(dMidRk4, dEulerMid);
}

/// Temporal order via step-halving Richardson: with the same grid, the
/// spatial error cancels in solution differences, so
/// ||u_dt - u_{dt/2}|| / ||u_{dt/2} - u_{dt/4}|| -> 2^p.
double measuredTemporalOrder(Scheme scheme) {
  auto dbl = smallLayout();
  const Real T = 0.2;
  auto solve = [&](int steps) {
    LevelData u = initialState(dbl);
    FluxDivRhs rhs(
        core::makeShiftFuse(core::ParallelGranularity::OverBoxes), 1);
    TimeIntegrator integ(scheme, dbl);
    const Real dt = T / steps;
    for (int s = 0; s < steps; ++s) {
      integ.advance(u, dt, rhs);
    }
    return u;
  };
  LevelData c = solve(4);
  LevelData f = solve(8);
  LevelData ff = solve(16);
  const Real e1 = LevelData::maxAbsDiffValid(c, f);
  const Real e2 = LevelData::maxAbsDiffValid(f, ff);
  return std::log2(e1 / e2);
}

TEST(TimeIntegrator, EulerIsFirstOrderInTime) {
  const double p = measuredTemporalOrder(Scheme::ForwardEuler);
  EXPECT_NEAR(p, 1.0, 0.3);
}

TEST(TimeIntegrator, MidpointIsSecondOrderInTime) {
  const double p = measuredTemporalOrder(Scheme::Midpoint);
  EXPECT_NEAR(p, 2.0, 0.4);
}

TEST(TimeIntegrator, SSPRK3IsThirdOrderInTime) {
  const double p = measuredTemporalOrder(Scheme::SSPRK3);
  EXPECT_NEAR(p, 3.0, 0.5);
}

TEST(TimeIntegrator, RK4IsFourthOrderInTime) {
  const double p = measuredTemporalOrder(Scheme::RK4);
  EXPECT_GT(p, 3.2);
}

TEST(FluxDivRhs, AppliesInvDxScale) {
  auto dbl = smallLayout();
  LevelData u = initialState(dbl);
  LevelData a(dbl, kNumComp, kNumGhost);
  LevelData b(dbl, kNumComp, kNumGhost);
  FluxDivRhs rhs1(core::makeBaseline(core::ParallelGranularity::OverBoxes),
                  1, 1.0);
  FluxDivRhs rhs2(core::makeBaseline(core::ParallelGranularity::OverBoxes),
                  1, 4.0);
  rhs1(u, a);
  rhs2(u, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    forEachCell(a.validBox(i), [&](int x, int y, int z) {
      ASSERT_NEAR(b[i](x, y, z, 3), 4.0 * a[i](x, y, z, 3), 1e-12);
    });
  }
}

TEST(FluxDivRhs, VariantChoiceDoesNotChangeTrajectory) {
  // The whole point of the study: schedules are interchangeable inside a
  // solver.
  auto dbl = smallLayout();
  LevelData u1 = initialState(dbl);
  LevelData u2 = initialState(dbl);
  FluxDivRhs rhsA(core::makeBaseline(core::ParallelGranularity::OverBoxes),
                  2);
  FluxDivRhs rhsB(
      core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 4,
                           core::ParallelGranularity::WithinBox),
      2);
  TimeIntegrator ia(Scheme::RK4, dbl);
  TimeIntegrator ib(Scheme::RK4, dbl);
  for (int s = 0; s < 3; ++s) {
    ia.advance(u1, 0.05, rhsA);
    ib.advance(u2, 0.05, rhsB);
  }
  EXPECT_LT(LevelData::maxAbsDiffValid(u1, u2), 1e-11);
}

TEST(FluxDivRhs, DissipationConservesAndSmooths) {
  // The artificial-dissipation RHS variant: still conservative (the
  // Laplacian telescopes over a periodic level) and strictly smoothing.
  auto dbl = smallLayout();
  LevelData u1 = initialState(dbl);
  LevelData u2 = initialState(dbl);
  FluxDivRhs plain(core::makeBaseline(core::ParallelGranularity::OverBoxes),
                   2);
  FluxDivRhs dissip(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 2, 1.0,
      nullptr, /*dissipation=*/0.05);
  const Real before = totalOf(u2, 0);
  TimeIntegrator ia(Scheme::Midpoint, dbl);
  TimeIntegrator ib(Scheme::Midpoint, dbl);
  for (int s = 0; s < 4; ++s) {
    ia.advance(u1, 0.05, plain);
    ib.advance(u2, 0.05, dissip);
  }
  EXPECT_NEAR(totalOf(u2, 0), before, 1e-9); // conservation survives
  // The dissipative trajectory differs and is smoother: compare the
  // deviation of each solution from its own mean via the L2 norm of the
  // flux-div RHS (a proxy for roughness).
  EXPECT_GT(LevelData::maxAbsDiffValid(u1, u2), 0.0);
}

} // namespace
} // namespace fluxdiv::solvers
