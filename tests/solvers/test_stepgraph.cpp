// Whole-RK-step task graphs (core/stepgraph.hpp + the TimeIntegrator fuse
// modes): bit-identity of every fuse mode against the eager reference
// across schemes, policies, pitches, and thread counts; the deepened-halo
// plan of the comm-avoiding transform; graphcheck verification of every
// lowered model; seeded cross-stage edge-drop mutations; and adversarial
// serial replay of the fused graphs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "analysis/graphcheck.hpp"
#include "analysis/mutate.hpp"
#include "core/stepgraph.hpp"
#include "grid/bc.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "solvers/integrator.hpp"

namespace fluxdiv::solvers {
namespace {

using analysis::DiagnosticKind;
using analysis::GraphCheckReport;
using analysis::TaskGraphModel;
using core::LevelPolicy;
using core::StepFuse;
using grid::Box;
using grid::DisjointBoxLayout;
using grid::LevelData;
using grid::Pitch;
using grid::ProblemDomain;
using grid::Real;
using kernels::kNumComp;
using kernels::kNumGhost;

DisjointBoxLayout smallLayout(int n = 16, int box = 8) {
  return DisjointBoxLayout(ProblemDomain(Box::cube(n)), box);
}

LevelData initialState(const DisjointBoxLayout& dbl,
                       Pitch pitch = Pitch::Padded) {
  LevelData u(dbl, kNumComp, kNumGhost, pitch);
  kernels::initializeExemplar(u);
  return u;
}

core::VariantConfig tiledConfig() {
  return core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 4,
                              core::ParallelGranularity::HybridBoxTile);
}

constexpr StepFuse kGraphModes[] = {StepFuse::Staged, StepFuse::Fused,
                                    StepFuse::CommAvoid};

/// Advance `steps` eager steps of `scheme` from the exemplar state.
LevelData eagerReference(Scheme scheme, const DisjointBoxLayout& dbl,
                         const core::VariantConfig& cfg, Real dt,
                         int steps, int threads,
                         Pitch pitch = Pitch::Padded) {
  LevelData u = initialState(dbl, pitch);
  FluxDivRhs rhs(cfg, threads);
  TimeIntegrator integ(scheme, dbl);
  integ.setStepFuse(StepFuse::Eager);
  for (int s = 0; s < steps; ++s) {
    integ.advance(u, dt, rhs);
  }
  return u;
}

std::string caseName(Scheme scheme, StepFuse fuse, LevelPolicy policy,
                     int threads) {
  return std::string(schemeName(scheme)) + "/" + core::stepFuseName(fuse) +
         "/" + core::levelPolicyName(policy) + "/T" +
         std::to_string(threads);
}

// ---------------------------------------------------------------------------
// Bit-identity: every fuse mode x policy x thread count reproduces the
// eager reference exactly.
// ---------------------------------------------------------------------------

TEST(StepGraph, BitIdenticalAcrossSchemesFuseModesAndPolicies) {
  const auto dbl = smallLayout();
  const Real dt = 0.005;
  const int steps = 3;
  const auto cfg = tiledConfig();
  for (const Scheme scheme : kSchemes) {
    for (const int threads : {1, 3}) {
      const LevelData ref =
          eagerReference(scheme, dbl, cfg, dt, steps, threads);
      for (const StepFuse fuse : kGraphModes) {
        for (const LevelPolicy policy : core::kLevelPolicies) {
          LevelData u = initialState(dbl);
          FluxDivRhs rhs(cfg, threads);
          TimeIntegrator integ(scheme, dbl);
          integ.setStepFuse(fuse);
          integ.setLevelPolicy(policy);
          for (int s = 0; s < steps; ++s) {
            integ.advance(u, dt, rhs);
          }
          EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u), 0.0)
              << caseName(scheme, fuse, policy, threads);
        }
      }
    }
  }
}

TEST(StepGraph, BitIdenticalWithDensePitch) {
  const auto dbl = smallLayout();
  const Real dt = 0.004;
  const auto cfg = core::makeShiftFuse(core::ParallelGranularity::OverBoxes);
  for (const Scheme scheme : {Scheme::SSPRK3, Scheme::RK4}) {
    const LevelData ref =
        eagerReference(scheme, dbl, cfg, dt, 2, 2, Pitch::Dense);
    for (const StepFuse fuse : kGraphModes) {
      LevelData u = initialState(dbl, Pitch::Dense);
      FluxDivRhs rhs(cfg, 2);
      TimeIntegrator integ(scheme, dbl);
      integ.setStepFuse(fuse);
      for (int s = 0; s < 2; ++s) {
        integ.advance(u, dt, rhs);
      }
      EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u), 0.0)
          << schemeName(scheme) << "/" << core::stepFuseName(fuse)
          << " dense pitch";
    }
  }
}

TEST(StepGraph, BitIdenticalWithDissipation) {
  const auto dbl = smallLayout();
  const Real dt = 0.004;
  const auto cfg = tiledConfig();
  LevelData ref = initialState(dbl);
  {
    FluxDivRhs rhs(cfg, 2, /*invDx=*/1.0, nullptr, /*dissipation=*/0.05);
    TimeIntegrator integ(Scheme::RK4, dbl);
    integ.setStepFuse(StepFuse::Eager);
    integ.advance(ref, dt, rhs);
  }
  for (const StepFuse fuse : kGraphModes) {
    LevelData u = initialState(dbl);
    FluxDivRhs rhs(cfg, 2, /*invDx=*/1.0, nullptr, /*dissipation=*/0.05);
    TimeIntegrator integ(Scheme::RK4, dbl);
    integ.setStepFuse(fuse);
    integ.advance(u, dt, rhs);
    EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u), 0.0)
        << core::stepFuseName(fuse) << " with dissipation";
  }
}

TEST(StepGraph, WallBoundedBitIdentical) {
  // Walls on x, periodic y/z: the BC fill becomes per-(box, dim) tasks in
  // the Staged/Fused graphs; CommAvoid must fall back to Fused (deepened
  // halos cannot re-apply physical BCs between stages).
  const int n = 16;
  ProblemDomain domain(Box::cube(n), std::array<bool, 3>{false, true, true});
  DisjointBoxLayout dbl(domain, 8);
  grid::BoundarySpec spec;
  spec.type[0] = {grid::BCType::ReflectiveWall, grid::BCType::ReflectiveWall};
  grid::BoundaryFiller walls(dbl, spec);
  const Real dt = 0.004;
  const auto cfg = tiledConfig();
  for (const Scheme scheme : {Scheme::Midpoint, Scheme::RK4}) {
    LevelData ref = initialState(dbl);
    {
      FluxDivRhs rhs(cfg, 2, 1.0, &walls);
      TimeIntegrator integ(scheme, dbl);
      integ.setStepFuse(StepFuse::Eager);
      for (int s = 0; s < 2; ++s) {
        integ.advance(ref, dt, rhs);
      }
    }
    for (const StepFuse fuse : kGraphModes) {
      for (const LevelPolicy policy :
           {LevelPolicy::BoxParallel, LevelPolicy::Hybrid}) {
        LevelData u = initialState(dbl);
        FluxDivRhs rhs(cfg, 2, 1.0, &walls);
        TimeIntegrator integ(scheme, dbl);
        integ.setStepFuse(fuse);
        integ.setLevelPolicy(policy);
        for (int s = 0; s < 2; ++s) {
          integ.advance(u, dt, rhs);
        }
        EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u), 0.0)
            << caseName(scheme, fuse, policy, 2) << " wall-bounded";
        if (fuse == StepFuse::CommAvoid) {
          ASSERT_NE(integ.stepStats(), nullptr);
          EXPECT_EQ(integ.stepStats()->fuse, StepFuse::Fused)
              << "boundary conditions must force the CommAvoid fallback";
        }
      }
    }
  }
}

TEST(StepGraph, MultiStepCaptureMatchesRepeatedAdvance) {
  const auto dbl = smallLayout();
  const Real dt = 0.004;
  const int steps = 3;
  const auto cfg = tiledConfig();
  for (const Scheme scheme : {Scheme::Midpoint, Scheme::RK4}) {
    const LevelData ref = eagerReference(scheme, dbl, cfg, dt, steps, 2);
    for (const StepFuse fuse : {StepFuse::Fused, StepFuse::CommAvoid}) {
      LevelData u = initialState(dbl);
      FluxDivRhs rhs(cfg, 2);
      TimeIntegrator integ(scheme, dbl);
      integ.setStepFuse(fuse);
      integ.advanceSteps(u, dt, rhs, steps);
      EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u), 0.0)
          << schemeName(scheme) << "/" << core::stepFuseName(fuse)
          << " multi-step";
      ASSERT_NE(integ.stepStats(), nullptr);
      EXPECT_EQ(integ.stepStats()->graphCount, 1u)
          << "a multi-step capture must dispatch as one graph";
      EXPECT_TRUE(integ.stepStats()->rebuilt);
      // A different LevelData with the same layout signature REBINDS into
      // the cached graphs instead of re-lowering (layout-keyed reuse),
      // and must still produce the bit-identical result.
      const std::uint64_t rebinds0 = integ.stepStats()->rebinds;
      LevelData u2 = initialState(dbl);
      integ.advanceSteps(u2, dt, rhs, steps);
      EXPECT_FALSE(integ.stepStats()->rebuilt)
          << "same layout signature must reuse the cached graphs";
      EXPECT_GT(integ.stepStats()->rebinds, rebinds0)
          << "a reallocated solution must be counted as a rebind";
      EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u2), 0.0)
          << schemeName(scheme) << "/" << core::stepFuseName(fuse)
          << " rebound multi-step";
      integ.advanceSteps(u2, dt, rhs, steps);
      EXPECT_FALSE(integ.stepStats()->rebuilt);
    }
  }
}

// ---------------------------------------------------------------------------
// The comm-avoiding halo plan.
// ---------------------------------------------------------------------------

TEST(StepGraph, CommAvoidDeepensTheExchangeToGhostTimesStages) {
  for (const Scheme scheme : kSchemes) {
    const core::StepProgram prog = buildStepProgram(scheme, 0.01);
    EXPECT_EQ(prog.rhsEvals, schemeRhsEvals(scheme));

    const core::StepHaloPlan staged =
        core::planStepHalos(prog, StepFuse::Staged);
    EXPECT_EQ(staged.depth, kNumGhost);

    const core::StepHaloPlan ca =
        core::planStepHalos(prog, StepFuse::CommAvoid);
    EXPECT_EQ(ca.depth, kNumGhost * schemeRhsEvals(scheme))
        << schemeName(scheme);
    int keptExchanges = 0;
    int firstRhsWidth = -1;
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      if (prog.ops[i].kind == core::StepOpKind::Exchange) {
        if (ca.width[i] >= 0) {
          ++keptExchanges;
          EXPECT_EQ(prog.ops[i].dst, 0)
              << "only the solution exchange survives";
          EXPECT_EQ(ca.width[i], ca.depth);
        }
      } else if (prog.ops[i].kind == core::StepOpKind::RhsEval &&
                 firstRhsWidth < 0) {
        firstRhsWidth = ca.width[i];
      }
    }
    EXPECT_EQ(keptExchanges, 1) << schemeName(scheme);
    // Stage 1 recomputes on the widest halo: depth minus one stencil.
    EXPECT_EQ(firstRhsWidth, ca.depth - kNumGhost) << schemeName(scheme);
  }
}

TEST(StepGraph, CommAvoidFallsBackWhenHaloExceedsBox) {
  // RK4 needs an 8-deep halo; on 4^3 boxes the Copier cannot provide it.
  DisjointBoxLayout dbl(ProblemDomain(Box::cube(8)), 4);
  const auto cfg = core::makeShiftFuse(core::ParallelGranularity::OverBoxes);
  const Real dt = 0.004;
  const LevelData ref = eagerReference(Scheme::RK4, dbl, cfg, dt, 2, 2);
  LevelData u = initialState(dbl);
  FluxDivRhs rhs(cfg, 2);
  TimeIntegrator integ(Scheme::RK4, dbl);
  integ.setStepFuse(StepFuse::CommAvoid);
  for (int s = 0; s < 2; ++s) {
    integ.advance(u, dt, rhs);
  }
  EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u), 0.0);
  ASSERT_NE(integ.stepStats(), nullptr);
  EXPECT_EQ(integ.stepStats()->fuse, StepFuse::Fused);

  // Euler only needs depth 2: CommAvoid proper must engage there.
  LevelData v = initialState(dbl);
  TimeIntegrator euler(Scheme::ForwardEuler, dbl);
  euler.setStepFuse(StepFuse::CommAvoid);
  euler.advance(v, dt, rhs);
  ASSERT_NE(euler.stepStats(), nullptr);
  EXPECT_EQ(euler.stepStats()->fuse, StepFuse::CommAvoid);
  EXPECT_EQ(euler.stepStats()->exchangeDepth, 2);
}

// ---------------------------------------------------------------------------
// Graph verification: every lowered model must pass checkTaskGraph before
// first execution, and the stats must reflect the capture.
// ---------------------------------------------------------------------------

TEST(StepGraph, LoweredModelsPassGraphcheck) {
  const auto dbl = smallLayout();
  const auto cfg = tiledConfig();
  for (const Scheme scheme : kSchemes) {
    const core::StepProgram prog = buildStepProgram(scheme, 0.01);
    for (const StepFuse fuse : kGraphModes) {
      for (const LevelPolicy policy :
           {LevelPolicy::BoxParallel, LevelPolicy::Hybrid}) {
        LevelData u = initialState(dbl);
        core::StepExecOptions opts;
        opts.fuse = fuse;
        opts.policy = policy;
        core::StepGraphExecutor exec(cfg, 2, opts);
        const auto models = exec.lowerModels(prog, u, {});
        if (fuse == StepFuse::Staged) {
          EXPECT_EQ(models.size(),
                    static_cast<std::size_t>(schemeRhsEvals(scheme)))
              << "Staged must dispatch one graph per stage";
        } else {
          EXPECT_EQ(models.size(), 1u);
        }
        for (const TaskGraphModel& m : models) {
          const GraphCheckReport rep = analysis::checkTaskGraph(m);
          EXPECT_TRUE(rep.ok())
              << m.name << ": "
              << (rep.diagnostics.empty()
                      ? std::string("-")
                      : rep.diagnostics[0].message());
          EXPECT_GT(rep.edgeCount, 0) << m.name;
        }
      }
    }
  }
}

TEST(StepGraph, StatsReflectTheCapture) {
  const auto dbl = smallLayout();
  const auto cfg = tiledConfig();
  const core::StepProgram prog = buildStepProgram(Scheme::RK4, 0.01);
  LevelData u = initialState(dbl);

  core::StepExecOptions fused;
  fused.fuse = StepFuse::Fused;
  core::StepGraphExecutor fusedExec(cfg, 2, fused);
  fusedExec.run(prog, u, {});
  const core::StepGraphStats fusedStats = fusedExec.stats();
  EXPECT_EQ(fusedStats.fuse, StepFuse::Fused);
  EXPECT_EQ(fusedStats.graphCount, 1u);
  EXPECT_EQ(fusedStats.exchangeDepth, kNumGhost);
  EXPECT_GT(fusedStats.taskCount, 0u);
  EXPECT_GT(fusedStats.edgeCount, fusedStats.taskCount)
      << "cross-stage fusion must carry more dependencies than tasks";

  LevelData v = initialState(dbl);
  core::StepExecOptions ca;
  ca.fuse = StepFuse::CommAvoid;
  core::StepGraphExecutor caExec(cfg, 2, ca);
  caExec.run(prog, v, {});
  const core::StepGraphStats caStats = caExec.stats();
  EXPECT_EQ(caStats.fuse, StepFuse::CommAvoid);
  EXPECT_EQ(caStats.exchangeDepth, kNumGhost * schemeRhsEvals(Scheme::RK4));
  EXPECT_LT(caStats.exchangeOps, fusedStats.exchangeOps)
      << "one deepened exchange must replace four shallow ones";
}

TEST(StepGraph, EagerFuseIsRejectedByTheExecutor) {
  core::StepExecOptions opts;
  opts.fuse = StepFuse::Eager;
  EXPECT_THROW(core::StepGraphExecutor(tiledConfig(), 2, opts),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Seeded mutation: dropping a cross-stage dependency edge from the fused
// model must be rejected by graphcheck with the predicted witness pair.
// ---------------------------------------------------------------------------

bool reported(const GraphCheckReport& rep, DiagnosticKind kind,
              const std::string& labelA, const std::string& labelB) {
  for (const analysis::Diagnostic& d : rep.diagnostics) {
    if (d.kind != kind) {
      continue;
    }
    if ((d.stageA == labelA && d.stageB == labelB) ||
        (d.stageA == labelB && d.stageB == labelA)) {
      return true;
    }
  }
  return false;
}

std::string firstWord(const std::string& s) {
  return s.substr(0, s.find(' '));
}

TEST(StepGraph, DroppedCrossStageEdgesAreCaught) {
  const auto dbl = smallLayout();
  LevelData u = initialState(dbl);
  core::StepExecOptions opts;
  opts.fuse = StepFuse::Fused;
  core::StepGraphExecutor exec(tiledConfig(), 2, opts);
  const auto models =
      exec.lowerModels(buildStepProgram(Scheme::RK4, 0.01), u, {});
  ASSERT_EQ(models.size(), 1u);
  const TaskGraphModel& m = models[0];

  int caught = 0;
  int crossOp = 0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const analysis::mutate::GraphMutation mut =
        analysis::mutate::dropGraphEdge(m, seed);
    if (mut.expect == DiagnosticKind::Ok) {
      continue; // no candidate for this seed
    }
    const GraphCheckReport rep = analysis::checkTaskGraph(mut.model);
    ASSERT_FALSE(rep.ok()) << "seed " << seed << ": " << mut.what
                           << " was accepted";
    EXPECT_TRUE(reported(rep, mut.expect, m.label(mut.taskA),
                         m.label(mut.taskB)))
        << "seed " << seed << ": " << mut.what << "\n  expected "
        << analysis::diagnosticKindName(mut.expect) << " naming '"
        << m.label(mut.taskA) << "' vs '" << m.label(mut.taskB)
        << "', first diagnostic: " << rep.diagnostics[0].message();
    ++caught;
    if (firstWord(m.label(mut.taskA)) != firstWord(m.label(mut.taskB))) {
      ++crossOp; // e.g. an rhs task racing an axpy/exchange task
    }
  }
  EXPECT_GE(caught, 5) << "the fused RK4 graph must offer drop candidates";
  EXPECT_GE(crossOp, 1)
      << "at least one dropped edge must cross an op-kind boundary "
      << "(a cross-stage dependency)";
}

// ---------------------------------------------------------------------------
// Adversarial serial replay: hostile ready-set orderings (with hostile
// worker attribution for the shadow detector, when compiled in) stay
// bit-identical to the eager reference.
// ---------------------------------------------------------------------------

TEST(StepGraph, AdversarialReplayIsBitIdentical) {
  const auto dbl = smallLayout();
  const Real dt = 0.004;
  const auto cfg = tiledConfig();
  const LevelData ref = eagerReference(Scheme::RK4, dbl, cfg, dt, 1, 3);
  for (const core::ReplayOrder order : core::kReplayOrders) {
    for (const std::uint64_t seed : {1ull, 7ull}) {
      LevelData u = initialState(dbl);
      FluxDivRhs rhs(cfg, 3);
      TimeIntegrator integ(Scheme::RK4, dbl);
      integ.setStepFuse(StepFuse::Fused);
      integ.setLevelPolicy(LevelPolicy::Hybrid);
      integ.setReplay({order, seed});
      integ.advance(u, dt, rhs);
      EXPECT_EQ(LevelData::maxAbsDiffValid(ref, u), 0.0)
          << "replay " << core::replayOrderName(order) << " seed " << seed;
      if (order != core::ReplayOrder::Random) {
        break; // seed only matters for Random
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Environment dispatch.
// ---------------------------------------------------------------------------

TEST(StepGraph, EnvironmentSelectsTheFuseMode) {
  const auto dbl = smallLayout();
  const auto cfg = core::makeShiftFuse(core::ParallelGranularity::OverBoxes);
  LevelData u = initialState(dbl);
  FluxDivRhs rhs(cfg, 2);

  ::setenv("FLUXDIV_STEP_FUSE", "commavoid", 1);
  {
    TimeIntegrator integ(Scheme::Midpoint, dbl);
    integ.advance(u, 0.004, rhs);
    ASSERT_NE(integ.stepStats(), nullptr);
    EXPECT_EQ(integ.stepStats()->fuse, StepFuse::CommAvoid);
  }
  ::setenv("FLUXDIV_STEP_FUSE", "bogus", 1);
  {
    TimeIntegrator integ(Scheme::Midpoint, dbl);
    EXPECT_THROW(integ.advance(u, 0.004, rhs), std::invalid_argument);
  }
  ::unsetenv("FLUXDIV_STEP_FUSE");

  core::StepFuse parsed{};
  EXPECT_TRUE(core::parseStepFuse("comm-avoiding", parsed));
  EXPECT_EQ(parsed, StepFuse::CommAvoid);
  EXPECT_TRUE(core::parseStepFuse("staged", parsed));
  EXPECT_EQ(parsed, StepFuse::Staged);
  EXPECT_FALSE(core::parseStepFuse("nope", parsed));
}

} // namespace
} // namespace fluxdiv::solvers
