#include "harness/args.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fluxdiv::harness {
namespace {

Args makeArgs() {
  Args args;
  args.addInt("n", 16, "box size");
  args.addDouble("scale", 1.0, "scale factor");
  args.addString("csv", "", "csv output path");
  args.addBool("paper", "paper-scale run");
  args.addIntList("threads", {1, 2}, "thread sweep");
  return args;
}

bool parseInto(Args& args, std::vector<std::string> argv) {
  std::vector<char*> raw;
  static std::vector<std::string> storage;
  storage = std::move(argv);
  raw.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) {
    raw.push_back(s.data());
  }
  return args.parse(static_cast<int>(raw.size()), raw.data());
}

TEST(Args, DefaultsApplyWithoutArguments) {
  Args args = makeArgs();
  ASSERT_TRUE(parseInto(args, {}));
  EXPECT_EQ(args.getInt("n"), 16);
  EXPECT_EQ(args.getDouble("scale"), 1.0);
  EXPECT_EQ(args.getString("csv"), "");
  EXPECT_FALSE(args.getBool("paper"));
  EXPECT_EQ(args.getIntList("threads"), (std::vector<std::int64_t>{1, 2}));
}

TEST(Args, SpaceSeparatedValues) {
  Args args = makeArgs();
  ASSERT_TRUE(parseInto(args, {"--n", "128", "--scale", "0.5"}));
  EXPECT_EQ(args.getInt("n"), 128);
  EXPECT_EQ(args.getDouble("scale"), 0.5);
}

TEST(Args, EqualsSeparatedValues) {
  Args args = makeArgs();
  ASSERT_TRUE(parseInto(args, {"--n=64", "--csv=out.csv"}));
  EXPECT_EQ(args.getInt("n"), 64);
  EXPECT_EQ(args.getString("csv"), "out.csv");
}

TEST(Args, BoolFlagForms) {
  Args args = makeArgs();
  ASSERT_TRUE(parseInto(args, {"--paper"}));
  EXPECT_TRUE(args.getBool("paper"));
  Args args2 = makeArgs();
  ASSERT_TRUE(parseInto(args2, {"--paper=false"}));
  EXPECT_FALSE(args2.getBool("paper"));
}

TEST(Args, IntListParsing) {
  Args args = makeArgs();
  ASSERT_TRUE(parseInto(args, {"--threads", "1,2,4,8,24"}));
  EXPECT_EQ(args.getIntList("threads"),
            (std::vector<std::int64_t>{1, 2, 4, 8, 24}));
}

TEST(Args, UnknownOptionThrows) {
  Args args = makeArgs();
  EXPECT_THROW(parseInto(args, {"--bogus", "1"}), std::runtime_error);
}

TEST(Args, MissingValueThrows) {
  Args args = makeArgs();
  EXPECT_THROW(parseInto(args, {"--n"}), std::runtime_error);
}

TEST(Args, PositionalArgumentThrows) {
  Args args = makeArgs();
  EXPECT_THROW(parseInto(args, {"stray"}), std::runtime_error);
}

TEST(Args, HelpReturnsFalse) {
  Args args = makeArgs();
  testing::internal::CaptureStdout();
  EXPECT_FALSE(parseInto(args, {"--help"}));
  const std::string help = testing::internal::GetCapturedStdout();
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("box size"), std::string::npos);
}

TEST(Args, WrongTypeAccessThrows) {
  Args args = makeArgs();
  ASSERT_TRUE(parseInto(args, {}));
  EXPECT_THROW((void)args.getInt("scale"), std::logic_error);
  EXPECT_THROW((void)args.getBool("n"), std::logic_error);
}

} // namespace
} // namespace fluxdiv::harness
