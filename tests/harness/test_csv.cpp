#include "harness/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fluxdiv::harness {
namespace {

std::string readAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public testing::Test {
protected:
  std::string path_ = testing::TempDir() + "fluxdiv_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    ASSERT_TRUE(csv.enabled());
    csv.writeRow({"1", "2"});
    csv.writeRow({"x", "y"});
  }
  EXPECT_EQ(readAll(path_), "a,b\n1,2\nx,y\n");
}

TEST_F(CsvTest, QuotesCommasAndQuotes) {
  {
    CsvWriter csv(path_, {"name"});
    csv.writeRow({"hello, world"});
    csv.writeRow({"say \"hi\""});
  }
  EXPECT_EQ(readAll(path_), "name\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, EmptyPathIsDisabledNoop) {
  CsvWriter csv("", {"a"});
  EXPECT_FALSE(csv.enabled());
  csv.writeRow({"ignored"}); // must not crash
}

} // namespace
} // namespace fluxdiv::harness
