#include "harness/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fluxdiv::harness {
namespace {

TEST(Table, AlignsColumnsAndPadsShortRows) {
  Table t({"name", "value"});
  t.addRow({"a", "1"});
  t.addRow({"longer-name"});
  EXPECT_EQ(t.rowCount(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
  // All lines share the header's structure: the "value" column of row "a"
  // is aligned under the header's "value".
  const auto headerPos = out.find("value");
  const auto rowLineStart = out.find("a ");
  ASSERT_NE(rowLineStart, std::string::npos);
  const auto valuePosInRow = out.find('1', rowLineStart);
  EXPECT_EQ(valuePosInRow - rowLineStart, headerPos);
}

TEST(FormatSeconds, FourDecimals) {
  EXPECT_EQ(formatSeconds(1.23456), "1.2346");
  EXPECT_EQ(formatSeconds(0.5), "0.5000");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(formatBytes(512), "512.0 B");
  EXPECT_EQ(formatBytes(1024), "1.00 KiB");
  EXPECT_EQ(formatBytes(1536), "1.50 KiB");
  EXPECT_EQ(formatBytes(5ull * 1024 * 1024), "5.00 MiB");
  EXPECT_EQ(formatBytes(3ull * 1024 * 1024 * 1024), "3.00 GiB");
}

} // namespace
} // namespace fluxdiv::harness
