#include "harness/machine.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fluxdiv::harness {
namespace {

TEST(Machine, QueryReturnsSaneValues) {
  const MachineInfo info = queryMachine();
  EXPECT_GE(info.logicalCores, 1);
  EXPECT_GE(info.ompMaxThreads, 1);
  for (const auto& c : info.caches) {
    EXPECT_GE(c.level, 1);
    EXPECT_GT(c.sizeBytes, 0u);
    EXPECT_GT(c.lineBytes, 0u);
    EXPECT_NE(c.type, "Instruction");
  }
}

TEST(Machine, LastLevelCachePicksDeepestLevel) {
  MachineInfo info;
  info.caches = {{1, "Data", 32 * 1024, 64, 8},
                 {2, "Unified", 256 * 1024, 64, 8},
                 {3, "Unified", 8 * 1024 * 1024, 64, 16}};
  EXPECT_EQ(lastLevelCacheBytes(info), 8u * 1024 * 1024);
  MachineInfo empty;
  EXPECT_EQ(lastLevelCacheBytes(empty), 0u);
}

TEST(Machine, ReportMentionsCoresAndCaches) {
  MachineInfo info;
  info.cpuModel = "TestCPU 9000";
  info.logicalCores = 42;
  info.ompMaxThreads = 42;
  info.caches = {{3, "Unified", 6 * 1024 * 1024, 64, 12}};
  std::ostringstream os;
  printMachineReport(os, info);
  const std::string out = os.str();
  EXPECT_NE(out.find("TestCPU 9000"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("L3"), std::string::npos);
  EXPECT_NE(out.find("6.00 MiB"), std::string::npos);
}

TEST(Machine, QueryNeverReturnsZeroSizedCaches) {
  // The cost model divides by cache capacities; a zero-sized level must
  // never escape queryMachine() even when detection fails.
  const MachineInfo info = queryMachine();
  ASSERT_FALSE(info.caches.empty());
  for (const auto& c : info.caches) {
    EXPECT_GT(c.sizeBytes, 0u);
    EXPECT_GT(c.lineBytes, 0u);
  }
  EXPECT_GT(lastLevelCacheBytes(info), 0u);
}

TEST(Machine, CacheFallbackInstallsDocumentedDefaults) {
  // Force the detection-failure path: no cache entries at all.
  MachineInfo info;
  EXPECT_TRUE(applyCacheFallback(info));
  EXPECT_TRUE(info.cacheFallback);
  EXPECT_EQ(info.caches.size(), defaultCacheHierarchy().size());
  for (const auto& c : info.caches) {
    EXPECT_GT(c.sizeBytes, 0u);
    EXPECT_EQ(c.lineBytes, 64u);
  }
  EXPECT_EQ(lastLevelCacheBytes(info), 8u * 1024 * 1024);
}

TEST(Machine, CacheFallbackDropsZeroSizedEntries) {
  // A partially-failed probe (zero-sized L2, usable L3) keeps the usable
  // level and does not install defaults.
  MachineInfo info;
  info.caches = {{2, "Unified", 0, 64, 8},
                 {3, "Unified", 6 * 1024 * 1024, 64, 12}};
  EXPECT_FALSE(applyCacheFallback(info));
  EXPECT_FALSE(info.cacheFallback);
  ASSERT_EQ(info.caches.size(), 1u);
  EXPECT_EQ(info.caches[0].level, 3);
  // All-zero probes fall through to the full default hierarchy.
  MachineInfo allZero;
  allZero.caches = {{1, "Data", 0, 0, 0}, {3, "Unified", 0, 0, 0}};
  EXPECT_TRUE(applyCacheFallback(allZero));
  EXPECT_TRUE(allZero.cacheFallback);
  EXPECT_EQ(lastLevelCacheBytes(allZero), 8u * 1024 * 1024);
}

TEST(Machine, FallbackReportIsMarked) {
  MachineInfo info;
  applyCacheFallback(info);
  info.cpuModel = "TestCPU";
  std::ostringstream os;
  printMachineReport(os, info);
  EXPECT_NE(os.str().find("default; detection failed"), std::string::npos);
}

TEST(Machine, ParseCpuListCountHandlesSysfsFormats) {
  EXPECT_EQ(parseCpuListCount("0"), 1);
  EXPECT_EQ(parseCpuListCount("0-3"), 4);
  EXPECT_EQ(parseCpuListCount("0-3,8-11,15"), 9);
  EXPECT_EQ(parseCpuListCount(""), 0);
  EXPECT_EQ(parseCpuListCount("abc"), 0);
  EXPECT_EQ(parseCpuListCount("3-1"), 0) << "inverted range counts nothing";
  EXPECT_EQ(parseCpuListCount("0,abc,4-5"), 3)
      << "unparseable tokens are skipped, not fatal";
}

TEST(Machine, QueryAlwaysReportsAtLeastOneNumaNode) {
  const MachineInfo info = queryMachine();
  ASSERT_FALSE(info.numaNodes.empty());
  int cpus = 0;
  for (const auto& n : info.numaNodes) {
    EXPECT_GE(n.id, 0);
    EXPECT_GT(n.cpuCount, 0);
    cpus += n.cpuCount;
  }
  EXPECT_GE(cpus, 1);
}

TEST(Machine, NumaFallbackInstallsSingleNodeSpanningAllCores) {
  MachineInfo info;
  info.logicalCores = 12;
  EXPECT_TRUE(applyNumaFallback(info));
  EXPECT_TRUE(info.numaFallback);
  ASSERT_EQ(info.numaNodes.size(), 1u);
  EXPECT_EQ(info.numaNodes[0].id, 0);
  EXPECT_EQ(info.numaNodes[0].cpuCount, 12);
}

TEST(Machine, NumaFallbackKeepsValidNodesAndDropsEmptyOnes) {
  MachineInfo info;
  info.logicalCores = 16;
  info.numaNodes = {{0, 8}, {1, 0}, {2, 8}};
  EXPECT_FALSE(applyNumaFallback(info));
  EXPECT_FALSE(info.numaFallback);
  ASSERT_EQ(info.numaNodes.size(), 2u);
  EXPECT_EQ(info.numaNodes[0].id, 0);
  EXPECT_EQ(info.numaNodes[1].id, 2);
}

TEST(Machine, ReportMentionsNumaTopology) {
  MachineInfo info;
  info.cpuModel = "TestCPU";
  info.logicalCores = 16;
  info.numaNodes = {{0, 8}, {1, 8}};
  applyCacheFallback(info);
  std::ostringstream os;
  printMachineReport(os, info);
  const std::string out = os.str();
  EXPECT_NE(out.find("NUMA: 2 nodes"), std::string::npos) << out;
  EXPECT_NE(out.find("node0: 8 CPUs"), std::string::npos) << out;
  EXPECT_NE(out.find("node1: 8 CPUs"), std::string::npos) << out;
}

TEST(Machine, DefaultThreadSweepShape) {
  EXPECT_EQ(defaultThreadSweep(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(defaultThreadSweep(8), (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(defaultThreadSweep(24),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16, 24}));
  EXPECT_EQ(defaultThreadSweep(20),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16, 20}));
}

} // namespace
} // namespace fluxdiv::harness
