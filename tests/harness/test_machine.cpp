#include "harness/machine.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fluxdiv::harness {
namespace {

TEST(Machine, QueryReturnsSaneValues) {
  const MachineInfo info = queryMachine();
  EXPECT_GE(info.logicalCores, 1);
  EXPECT_GE(info.ompMaxThreads, 1);
  for (const auto& c : info.caches) {
    EXPECT_GE(c.level, 1);
    EXPECT_GT(c.sizeBytes, 0u);
    EXPECT_GT(c.lineBytes, 0u);
    EXPECT_NE(c.type, "Instruction");
  }
}

TEST(Machine, LastLevelCachePicksDeepestLevel) {
  MachineInfo info;
  info.caches = {{1, "Data", 32 * 1024, 64, 8},
                 {2, "Unified", 256 * 1024, 64, 8},
                 {3, "Unified", 8 * 1024 * 1024, 64, 16}};
  EXPECT_EQ(lastLevelCacheBytes(info), 8u * 1024 * 1024);
  MachineInfo empty;
  EXPECT_EQ(lastLevelCacheBytes(empty), 0u);
}

TEST(Machine, ReportMentionsCoresAndCaches) {
  MachineInfo info;
  info.cpuModel = "TestCPU 9000";
  info.logicalCores = 42;
  info.ompMaxThreads = 42;
  info.caches = {{3, "Unified", 6 * 1024 * 1024, 64, 12}};
  std::ostringstream os;
  printMachineReport(os, info);
  const std::string out = os.str();
  EXPECT_NE(out.find("TestCPU 9000"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("L3"), std::string::npos);
  EXPECT_NE(out.find("6.00 MiB"), std::string::npos);
}

TEST(Machine, QueryNeverReturnsZeroSizedCaches) {
  // The cost model divides by cache capacities; a zero-sized level must
  // never escape queryMachine() even when detection fails.
  const MachineInfo info = queryMachine();
  ASSERT_FALSE(info.caches.empty());
  for (const auto& c : info.caches) {
    EXPECT_GT(c.sizeBytes, 0u);
    EXPECT_GT(c.lineBytes, 0u);
  }
  EXPECT_GT(lastLevelCacheBytes(info), 0u);
}

TEST(Machine, CacheFallbackInstallsDocumentedDefaults) {
  // Force the detection-failure path: no cache entries at all.
  MachineInfo info;
  EXPECT_TRUE(applyCacheFallback(info));
  EXPECT_TRUE(info.cacheFallback);
  EXPECT_EQ(info.caches.size(), defaultCacheHierarchy().size());
  for (const auto& c : info.caches) {
    EXPECT_GT(c.sizeBytes, 0u);
    EXPECT_EQ(c.lineBytes, 64u);
  }
  EXPECT_EQ(lastLevelCacheBytes(info), 8u * 1024 * 1024);
}

TEST(Machine, CacheFallbackDropsZeroSizedEntries) {
  // A partially-failed probe (zero-sized L2, usable L3) keeps the usable
  // level and does not install defaults.
  MachineInfo info;
  info.caches = {{2, "Unified", 0, 64, 8},
                 {3, "Unified", 6 * 1024 * 1024, 64, 12}};
  EXPECT_FALSE(applyCacheFallback(info));
  EXPECT_FALSE(info.cacheFallback);
  ASSERT_EQ(info.caches.size(), 1u);
  EXPECT_EQ(info.caches[0].level, 3);
  // All-zero probes fall through to the full default hierarchy.
  MachineInfo allZero;
  allZero.caches = {{1, "Data", 0, 0, 0}, {3, "Unified", 0, 0, 0}};
  EXPECT_TRUE(applyCacheFallback(allZero));
  EXPECT_TRUE(allZero.cacheFallback);
  EXPECT_EQ(lastLevelCacheBytes(allZero), 8u * 1024 * 1024);
}

TEST(Machine, FallbackReportIsMarked) {
  MachineInfo info;
  applyCacheFallback(info);
  info.cpuModel = "TestCPU";
  std::ostringstream os;
  printMachineReport(os, info);
  EXPECT_NE(os.str().find("default; detection failed"), std::string::npos);
}

TEST(Machine, DefaultThreadSweepShape) {
  EXPECT_EQ(defaultThreadSweep(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(defaultThreadSweep(8), (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(defaultThreadSweep(24),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16, 24}));
  EXPECT_EQ(defaultThreadSweep(20),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16, 20}));
}

} // namespace
} // namespace fluxdiv::harness
