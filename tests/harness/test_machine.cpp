#include "harness/machine.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fluxdiv::harness {
namespace {

TEST(Machine, QueryReturnsSaneValues) {
  const MachineInfo info = queryMachine();
  EXPECT_GE(info.logicalCores, 1);
  EXPECT_GE(info.ompMaxThreads, 1);
  for (const auto& c : info.caches) {
    EXPECT_GE(c.level, 1);
    EXPECT_GT(c.sizeBytes, 0u);
    EXPECT_GT(c.lineBytes, 0u);
    EXPECT_NE(c.type, "Instruction");
  }
}

TEST(Machine, LastLevelCachePicksDeepestLevel) {
  MachineInfo info;
  info.caches = {{1, "Data", 32 * 1024, 64, 8},
                 {2, "Unified", 256 * 1024, 64, 8},
                 {3, "Unified", 8 * 1024 * 1024, 64, 16}};
  EXPECT_EQ(lastLevelCacheBytes(info), 8u * 1024 * 1024);
  MachineInfo empty;
  EXPECT_EQ(lastLevelCacheBytes(empty), 0u);
}

TEST(Machine, ReportMentionsCoresAndCaches) {
  MachineInfo info;
  info.cpuModel = "TestCPU 9000";
  info.logicalCores = 42;
  info.ompMaxThreads = 42;
  info.caches = {{3, "Unified", 6 * 1024 * 1024, 64, 12}};
  std::ostringstream os;
  printMachineReport(os, info);
  const std::string out = os.str();
  EXPECT_NE(out.find("TestCPU 9000"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("L3"), std::string::npos);
  EXPECT_NE(out.find("6.00 MiB"), std::string::npos);
}

TEST(Machine, DefaultThreadSweepShape) {
  EXPECT_EQ(defaultThreadSweep(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(defaultThreadSweep(8), (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(defaultThreadSweep(24),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16, 24}));
  EXPECT_EQ(defaultThreadSweep(20),
            (std::vector<std::int64_t>{1, 2, 4, 8, 16, 20}));
}

} // namespace
} // namespace fluxdiv::harness
