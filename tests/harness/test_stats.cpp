#include "harness/stats.hpp"

#include <gtest/gtest.h>

#include <iostream>

namespace fluxdiv::harness {
namespace {

TEST(Summarize, EmptySample) {
  const SampleStats s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleSample) {
  const SampleStats s = summarize({3.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 3.5);
  EXPECT_EQ(s.max, 3.5);
  EXPECT_EQ(s.mean, 3.5);
  EXPECT_EQ(s.median, 3.5);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, OddCountMedian) {
  const SampleStats s = summarize({5.0, 1.0, 3.0});
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Summarize, EvenCountMedianAveragesMiddlePair) {
  const SampleStats s = summarize({4.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Summarize, StddevOfKnownSample) {
  // Population stddev of {2,4,4,4,5,5,7,9} is 2.
  const SampleStats s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
}

TEST(RepeatTimed, RunsRequestedRepsAndWarmups) {
  int calls = 0;
  const SampleStats s = repeatTimed([&] { ++calls; }, 5, 2);
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(s.count, 5u);
  EXPECT_GE(s.min, 0.0);
  EXPECT_LE(s.min, s.max);
}

TEST(Timer, MeasuresMonotonicNonNegative) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 10000; ++i) {
    sink += i;
  }
  testing::internal::CaptureStdout();
  std::cout << (sink > 0);
  (void)testing::internal::GetCapturedStdout();
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.nanoseconds(), 0);
  const double first = t.seconds();
  EXPECT_GE(t.seconds(), first);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> s{4.0, 1.0, 3.0, 2.0}; // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(s, 25.0), 1.75);
  // Clamped, not extrapolated.
  EXPECT_DOUBLE_EQ(percentile(s, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(s, 250.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Percentile, LatencySummaryMatchesPercentile) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) {
    samples.push_back(static_cast<double>(i));
  }
  const LatencySummary s = latencySummary(samples);
  EXPECT_EQ(s.count, 100U);
  EXPECT_DOUBLE_EQ(s.p50, percentile(samples, 50.0));
  EXPECT_DOUBLE_EQ(s.p90, percentile(samples, 90.0));
  EXPECT_DOUBLE_EQ(s.p99, percentile(samples, 99.0));
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);

  const LatencySummary empty = latencySummary({});
  EXPECT_EQ(empty.count, 0U);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);
}

} // namespace
} // namespace fluxdiv::harness
