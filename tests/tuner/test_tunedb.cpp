#include "tuner/tunedb.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "analysis/costmodel.hpp"
#include "solvers/integrator.hpp"

namespace fluxdiv::tuner {
namespace {

MachineSignature fakeMachine(const std::string& model = "Test CPU @ 9GHz") {
  MachineSignature sig;
  sig.cpuModel = model;
  sig.logicalCores = 8;
  sig.llcBytes = 16 * 1024 * 1024;
  return sig;
}

TuneKey key(const std::string& scheme = "rk4", int boxSize = 16,
            int threads = 4) {
  return TuneKey{scheme, boxSize, 2, threads};
}

std::string tmpPath(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(TuneDB, RoundTripThroughDisk) {
  const std::string path = tmpPath("tunedb_roundtrip.json");
  TuneDB db(fakeMachine());
  db.observe(key(), core::StepFuse::CommAvoid, core::LevelPolicy::Hybrid,
             1.25e-3);
  db.save(path);

  TuneDB reloaded(fakeMachine());
  ASSERT_TRUE(reloaded.load(path));
  EXPECT_EQ(reloaded.size(), 1U);
  const TuneEntry* e = reloaded.find(key());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->fuse, core::StepFuse::CommAvoid);
  EXPECT_EQ(e->policy, core::LevelPolicy::Hybrid);
  EXPECT_DOUBLE_EQ(e->seconds, 1.25e-3);
  EXPECT_TRUE(e->measured);

  // A warm key is a hit: repeat traffic never re-tunes.
  const TuneEntry& hit = reloaded.suggest(key());
  EXPECT_TRUE(hit.measured);
  EXPECT_EQ(reloaded.counters().hits, 1U);
  EXPECT_EQ(reloaded.counters().misses, 0U);
}

TEST(TuneDB, MachineMismatchFallsBackToCostModelPrior) {
  const std::string path = tmpPath("tunedb_foreign.json");
  TuneDB writer(fakeMachine("Node A"));
  writer.observe(key(), core::StepFuse::Eager,
                 core::LevelPolicy::BoxSequential, 9.9);
  writer.save(path);

  TuneDB db(fakeMachine("Node B"));
  ASSERT_TRUE(db.load(path));
  EXPECT_EQ(db.size(), 0U) << "foreign measurements must not transfer";
  EXPECT_GE(db.counters().rejected, 1U);

  const TuneEntry& prior = db.suggest(key());
  EXPECT_FALSE(prior.measured);
  EXPECT_EQ(db.counters().misses, 1U);
  // The fallback is the analysis ranking, not the foreign record.
  EXPECT_NE(prior.fuse, core::StepFuse::Eager);
}

TEST(TuneDB, PriorMatchesStepFusionRanking) {
  const TuneKey k = key("rk4", 16, 4);
  const TuneEntry prior = costModelPrior(k, 8, fakeMachine());
  const auto fusion = analysis::analyzeStepFusion(
      solvers::schemeRhsEvals(solvers::Scheme::RK4), 16, 8);
  for (const auto& f : fusion) {
    if (f.rank == 1) {
      EXPECT_EQ(prior.fuse, f.fuse);
      EXPECT_DOUBLE_EQ(prior.priorCostBytes, f.costBytes);
    }
  }
  EXPECT_THROW(costModelPrior(TuneKey{"rk9", 16, 2, 4}, 8, fakeMachine()),
               std::invalid_argument);
}

TEST(TuneDB, PriorIsSeededOnceAndUpgradedByObserve) {
  TuneDB db(fakeMachine());
  const TuneEntry& p1 = db.suggest(key());
  EXPECT_FALSE(p1.measured);
  db.suggest(key());
  EXPECT_EQ(db.counters().seeds, 1U) << "prior memoized, not re-derived";
  EXPECT_EQ(db.counters().misses, 2U);

  db.observe(key(), core::StepFuse::Fused, core::LevelPolicy::BoxParallel,
             2.0e-3);
  const TuneEntry& hit = db.suggest(key());
  EXPECT_TRUE(hit.measured);
  EXPECT_EQ(db.counters().hits, 1U);
  EXPECT_EQ(db.size(), 1U);
}

TEST(TuneDB, ObserveKeepsTheFasterChoice) {
  TuneDB db(fakeMachine());
  db.observe(key(), core::StepFuse::Staged, core::LevelPolicy::BoxParallel,
             2.0);
  db.observe(key(), core::StepFuse::Fused, core::LevelPolicy::Hybrid, 1.0);
  const TuneEntry* e = db.find(key());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->fuse, core::StepFuse::Fused);
  EXPECT_DOUBLE_EQ(e->seconds, 1.0);

  // A slower repeat of a different choice does not displace the record;
  // a faster repeat of the same choice tightens it.
  db.observe(key(), core::StepFuse::Eager, core::LevelPolicy::Hybrid, 1.5);
  EXPECT_EQ(db.find(key())->fuse, core::StepFuse::Fused);
  db.observe(key(), core::StepFuse::Fused, core::LevelPolicy::Hybrid, 0.5);
  EXPECT_DOUBLE_EQ(db.find(key())->seconds, 0.5);
  EXPECT_EQ(db.counters().refines, 4U);
}

TEST(TuneDB, PriorsAreNotPersisted) {
  const std::string path = tmpPath("tunedb_priors.json");
  TuneDB db(fakeMachine());
  db.suggest(key());
  db.save(path);
  TuneDB reloaded(fakeMachine());
  ASSERT_TRUE(reloaded.load(path));
  EXPECT_EQ(reloaded.size(), 0U);
}

TEST(TuneDB, EscapedMachineStringsRoundTrip) {
  const std::string path = tmpPath("tunedb_escape.json");
  const MachineSignature sig =
      fakeMachine("Weird \"CPU\"\\ with\ttabs\nand newlines");
  TuneDB db(sig);
  db.observe(key(), core::StepFuse::Fused, core::LevelPolicy::BoxParallel,
             1.0);
  db.save(path);
  TuneDB reloaded(sig);
  ASSERT_TRUE(reloaded.load(path));
  EXPECT_EQ(reloaded.size(), 1U) << "signature must match after escaping";
}

TEST(TuneDB, MissingFileIsAColdCache) {
  TuneDB db(fakeMachine());
  EXPECT_FALSE(db.load(tmpPath("tunedb_does_not_exist.json")));
  EXPECT_EQ(db.size(), 0U);
}

TEST(TuneDB, KeysDiscriminateEveryField) {
  TuneDB db(fakeMachine());
  db.observe(key("rk4", 16, 4), core::StepFuse::Fused,
             core::LevelPolicy::BoxParallel, 1.0);
  EXPECT_EQ(db.find(key("rk4", 32, 4)), nullptr);
  EXPECT_EQ(db.find(key("ssprk3", 16, 4)), nullptr);
  EXPECT_EQ(db.find(key("rk4", 16, 8)), nullptr);
  TuneKey g = key("rk4", 16, 4);
  g.ghost = 3;
  EXPECT_EQ(db.find(g), nullptr);
  EXPECT_NE(db.find(key("rk4", 16, 4)), nullptr);
}

} // namespace
} // namespace fluxdiv::tuner
