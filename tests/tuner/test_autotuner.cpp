#include "tuner/autotuner.hpp"

#include <gtest/gtest.h>

#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::tuner {
namespace {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::LevelData;
using grid::ProblemDomain;
using kernels::kNumComp;
using kernels::kNumGhost;

struct Fixture {
  DisjointBoxLayout dbl{ProblemDomain(Box::cube(16)), 16};
  LevelData phi0{dbl, kNumComp, kNumGhost};
  LevelData phi1{dbl, kNumComp, kNumGhost};
  Fixture() { kernels::initializeExemplar(phi0); }
};

TEST(Autotuner, CoversEveryRegisteredVariant) {
  Fixture f;
  TuneOptions opts;
  opts.threads = 1;
  opts.reps = 1;
  opts.modelPruning = false;
  const TuneResult result = autotune(f.phi0, f.phi1, opts);
  EXPECT_EQ(result.measurements.size(),
            core::enumerateVariants(16).size());
  EXPECT_EQ(result.prunedCount, 0);
  for (const auto& m : result.measurements) {
    EXPECT_GT(m.seconds, 0.0) << m.cfg.name();
    EXPECT_GT(m.predictedBytesPerCell, 0.0) << m.cfg.name();
  }
}

TEST(Autotuner, BestIsTheMinimumMeasured) {
  Fixture f;
  TuneOptions opts;
  opts.threads = 1;
  opts.reps = 1;
  opts.modelPruning = false;
  const TuneResult result = autotune(f.phi0, f.phi1, opts);
  for (const auto& m : result.measurements) {
    EXPECT_LE(result.bestSeconds, m.seconds) << m.cfg.name();
  }
  EXPECT_TRUE(result.best.validFor(16));
}

TEST(Autotuner, PruningSkipsHighTrafficCandidates) {
  Fixture f;
  TuneOptions opts;
  opts.threads = 1;
  opts.reps = 1;
  opts.modelPruning = true;
  opts.pruneFactor = 1.05; // aggressive: keep only near-optimal traffic
  opts.cacheBytes = 256 * 1024; // small LLC so predictions spread out
  const TuneResult result = autotune(f.phi0, f.phi1, opts);
  EXPECT_GT(result.prunedCount, 0);
  EXPECT_LT(result.prunedCount,
            static_cast<int>(result.measurements.size()));
  for (const auto& m : result.measurements) {
    if (m.pruned) {
      EXPECT_EQ(m.seconds, 0.0);
    }
  }
  // A winner is still produced.
  EXPECT_GT(result.bestSeconds, 0.0);
}

TEST(Autotuner, RankedPutsFastestFirstAndPrunedLast) {
  Fixture f;
  TuneOptions opts;
  opts.threads = 1;
  opts.reps = 1;
  opts.pruneFactor = 1.5;
  opts.cacheBytes = 256 * 1024;
  const TuneResult result = autotune(f.phi0, f.phi1, opts);
  const auto ranked = result.ranked();
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().cfg.name(), result.best.name());
  bool seenPruned = false;
  double prev = 0.0;
  for (const auto& m : ranked) {
    if (m.pruned) {
      seenPruned = true;
      continue;
    }
    EXPECT_FALSE(seenPruned) << "measured candidate after pruned ones";
    EXPECT_GE(m.seconds, prev);
    prev = m.seconds;
  }
}

TEST(Autotuner, TunedVariantProducesCorrectResult) {
  Fixture f;
  TuneOptions opts;
  opts.threads = 2;
  opts.reps = 1;
  const TuneResult result = autotune(f.phi0, f.phi1, opts);
  // Rerun the winner and compare against the baseline schedule.
  LevelData expected(f.dbl, kNumComp, kNumGhost);
  LevelData actual(f.dbl, kNumComp, kNumGhost);
  core::FluxDivRunner base(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), 1);
  base.run(f.phi0, expected);
  core::FluxDivRunner tuned(result.best, 2);
  tuned.run(f.phi0, actual);
  EXPECT_LT(LevelData::maxAbsDiffValid(expected, actual), 1e-12);
}

TEST(Autotuner, RankedOrdersTimedAscendingWithPrunedLast) {
  // Synthetic measurement record: ranked() must sort the timed
  // candidates fastest-first and park every pruned (untimed) candidate
  // behind them regardless of its predicted traffic.
  TuneResult result;
  const auto add = [&result](double seconds, bool pruned,
                             double predicted) {
    TuneMeasurement m;
    m.seconds = seconds;
    m.pruned = pruned;
    m.predictedBytesPerCell = predicted;
    result.measurements.push_back(m);
  };
  add(3.0, false, 10.0);
  add(0.0, true, 1.0); // pruned, best prediction: still ranked last
  add(1.0, false, 30.0);
  add(0.0, true, 2.0);
  add(2.0, false, 20.0);

  const std::vector<TuneMeasurement> ranked = result.ranked();
  ASSERT_EQ(ranked.size(), 5U);
  EXPECT_DOUBLE_EQ(ranked[0].seconds, 1.0);
  EXPECT_DOUBLE_EQ(ranked[1].seconds, 2.0);
  EXPECT_DOUBLE_EQ(ranked[2].seconds, 3.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(ranked[i].pruned) << i;
  }
  EXPECT_TRUE(ranked[3].pruned);
  EXPECT_TRUE(ranked[4].pruned);
}

} // namespace
} // namespace fluxdiv::tuner
