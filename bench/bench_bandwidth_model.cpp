// Sec. VI-B reproduction (bandwidth analysis): the paper measured DRAM
// bandwidth with VTune/PCM on a 4-core Ivy Bridge desktop (6 MiB LLC) —
// baseline N=16 ~4.9 GB/s vs N=128 ~18.3 GB/s (saturating the 21 GB/s
// bus); shift-fuse cut N=128 demand to ~9.4/<6 GB/s. Hardware counters
// are not available here, so this bench reports the same comparison as
// DRAM *bytes per cell update* from (a) the exact trace-driven cache
// simulator at small N and (b) the analytic traffic model across the full
// size range, using the desktop's 6 MiB LLC geometry.

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "memmodel/trace.hpp"
#include "memmodel/traffic_model.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::VariantConfig;

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("sim-max-n", 32,
              "largest box side replayed through the exact cache sim");
  args.addInt("llc-mib", 6, "last-level cache size (paper desktop: 6)");
  args.addString("csv", "", "also write results to this CSV file");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const std::size_t llc =
      std::size_t(args.getInt("llc-mib")) * 1024 * 1024;
  const int simMaxN = static_cast<int>(args.getInt("sim-max-n"));
  std::cout << "=== Sec. VI-B: DRAM traffic per schedule (LLC = "
            << harness::formatBytes(llc) << ") ===\n"
            << "substitute for the paper's VTune bandwidth counters; see\n"
            << "DESIGN.md (substitutions table)\n\n";

  const VariantConfig schedules[] = {
      core::makeBaseline(ParallelGranularity::OverBoxes),
      core::makeShiftFuse(ParallelGranularity::OverBoxes,
                          ComponentLoop::Inside),
      core::makeShiftFuse(ParallelGranularity::OverBoxes,
                          ComponentLoop::Outside),
      core::makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                           ParallelGranularity::WithinBox),
      core::makeOverlapped(IntraTileSchedule::Basic, 8,
                           ParallelGranularity::WithinBox),
  };

  harness::Table table({"schedule", "N", "model B/cell", "sim B/cell",
                        "working set", "fits LLC"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"schedule", "N", "model_bytes_per_cell",
                          "sim_bytes_per_cell", "working_set_bytes",
                          "fits"});

  for (const VariantConfig& cfg : schedules) {
    for (int n : {16, 32, 64, 128}) {
      if (!cfg.validFor(n)) {
        continue;
      }
      const auto est = memmodel::estimateTraffic(cfg, n, llc);
      std::string simCell = "-";
      if (n <= simMaxN) {
        memmodel::CacheSim sim =
            memmodel::CacheSim::makeTypical(32 * 1024, 256 * 1024, llc);
        memmodel::traceBoxEvaluation(sim, cfg, n);
        simCell = harness::formatDouble(
            double(sim.dramBytes()) / (double(n) * n * n), 1);
      }
      table.addRow({cfg.name(), std::to_string(n),
                    harness::formatDouble(est.bytesPerCell, 1), simCell,
                    harness::formatBytes(std::size_t(est.workingSetBytes)),
                    est.workingSetFits ? "yes" : "no"});
      csv.writeRow({cfg.name(), std::to_string(n),
                    harness::formatDouble(est.bytesPerCell, 1), simCell,
                    harness::formatDouble(est.workingSetBytes, 0),
                    est.workingSetFits ? "1" : "0"});
    }
  }
  table.print(std::cout);

  std::cout
      << "\npaper shape check (Sec. VI-B): baseline traffic jumps ~4x\n"
         "once its temporaries exceed the LLC (4.9 -> 18.3 GB/s on the\n"
         "paper's desktop); shift-fuse cuts the large-N demand sharply;\n"
         "tiled schedules stay near the compulsory floor at every N.\n";
  return 0;
}
