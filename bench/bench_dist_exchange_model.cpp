// The inter-node side of the paper's motivation, at simulated scale: on a
// fixed domain spread over P simulated MPI ranks, smaller boxes multiply
// both the ghost volume and the message count of every exchange. This is
// the cost the paper's on-node scheduling work exists to let applications
// escape (run 128^3 boxes instead of 16^3 without losing node
// performance). Uses the alpha-beta communication model of src/distsim
// (no MPI in this environment — see DESIGN.md substitutions).

#include <iostream>

#include "common.hpp"
#include "distsim/comm_model.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "kernels/exemplar.hpp"

using namespace fluxdiv;

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("domain", 256, "domain side (cells)");
  args.addIntList("ranks", {8, 64, 512}, "simulated rank counts");
  args.addDouble("latency-us", 1.5, "per-message latency (microseconds)");
  args.addDouble("bandwidth-gbs", 5.0, "per-rank bandwidth (GB/s)");
  args.addString("csv", "", "also write results to this CSV file");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int dom = static_cast<int>(args.getInt("domain"));
  distsim::NetworkParams net;
  net.latencySeconds = args.getDouble("latency-us") * 1e-6;
  net.bytesPerSecond = args.getDouble("bandwidth-gbs") * 1e9;

  std::cout << "=== Simulated distributed ghost exchange, " << dom
            << "^3 domain ===\n"
            << "alpha-beta model: " << args.getDouble("latency-us")
            << " us/message, " << args.getDouble("bandwidth-gbs")
            << " GB/s per rank\n\n";

  harness::Table table({"ranks", "box size", "boxes/rank", "off-rank %",
                        "msgs/rank", "MiB/rank", "predicted s/exchange"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"ranks", "box", "boxes_per_rank", "off_frac",
                          "msgs_per_rank", "bytes_per_rank", "seconds"});

  for (std::int64_t nRanks : args.getIntList("ranks")) {
    for (int box : {16, 32, 64, 128}) {
      if (dom % box != 0) {
        continue;
      }
      grid::DisjointBoxLayout dbl(
          grid::ProblemDomain(grid::Box::cube(dom)), box);
      if (dbl.size() < static_cast<std::size_t>(nRanks)) {
        continue; // fewer boxes than ranks: not the regime of interest
      }
      grid::Copier copier(dbl, kernels::kNumGhost);
      distsim::RankDecomposition ranks(dbl, static_cast<int>(nRanks));
      const distsim::ExchangeCost cost =
          distsim::analyzeExchange(ranks, copier, kernels::kNumComp, net);
      table.addRow(
          {std::to_string(nRanks), std::to_string(box),
           harness::formatDouble(double(dbl.size()) / double(nRanks), 1),
           harness::formatDouble(100.0 * cost.offRankFraction(), 1),
           std::to_string(cost.maxMessagesPerRank),
           harness::formatDouble(double(cost.maxBytesPerRank) /
                                     (1024.0 * 1024.0),
                                 2),
           harness::formatDouble(cost.predictedSeconds * 1e3, 3) + " ms"});
      csv.writeRow({std::to_string(nRanks), std::to_string(box),
                    harness::formatDouble(
                        double(dbl.size()) / double(nRanks), 2),
                    harness::formatDouble(cost.offRankFraction(), 4),
                    std::to_string(cost.maxMessagesPerRank),
                    std::to_string(cost.maxBytesPerRank),
                    harness::formatDouble(cost.predictedSeconds, 6)});
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: at fixed rank count, every halving of the box "
               "size\nroughly doubles the exchange bytes per rank and "
               "multiplies the\nmessage count — the overhead that makes "
               "128^3 boxes attractive\n(paper Sec. I / Fig. 1), provided "
               "the node can compute them (Secs. IV-VI).\n";
  return 0;
}
