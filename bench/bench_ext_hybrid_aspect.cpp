// Extension bench (beyond the paper's 30 variants, following its related
// work): (a) hybrid box-x-tile parallelization of overlapped tiles — the
// on-node analogue of hierarchical overlapped tiling (Zhou et al. [50]) —
// versus the paper's two granularities; (b) non-cubic tile aspects
// (pencil N x T x T and slab N x N x T, after Rivera-Tseng partial
// blocking) versus cubes, which trades wavefront/tile parallelism against
// unit-stride streaming length.

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::TileAspect;
using core::VariantConfig;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  args.addInt("boxsize", 64, "box side N");
  args.addInt("tilesize", 8, "tile parameter T");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int n = static_cast<int>(args.getInt("boxsize"));
  const int t = static_cast<int>(args.getInt("tilesize"));
  bench::printHeader("Extensions: hybrid granularity + tile aspect, N=" +
                         std::to_string(n),
                     args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const int threads = bench::threadSweep(args).back();
  std::cout << "threads: " << threads << ", T: " << t << "\n\n";

  bench::Problem problem(n, nWork);
  harness::Table table({"experiment", "schedule", "seconds"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"experiment", "schedule", "seconds"});

  auto measure = [&](const char* label, VariantConfig cfg) {
    if (!cfg.validFor(n)) {
      return;
    }
    const double secs = bench::timeVariant(cfg, problem, threads, reps);
    table.addRow({label, cfg.name(), harness::formatSeconds(secs)});
    csv.writeRow({label, cfg.name(), harness::formatSeconds(secs)});
    std::cerr << "  " << cfg.name() << ": " << harness::formatSeconds(secs)
              << "s\n";
  };

  // (a) granularity comparison for overlapped tiles.
  for (auto par :
       {ParallelGranularity::OverBoxes, ParallelGranularity::WithinBox,
        ParallelGranularity::HybridBoxTile}) {
    measure("granularity",
            core::makeOverlapped(IntraTileSchedule::ShiftFuse, t, par));
  }

  // (b) aspect comparison at fixed T for OT and blocked WF.
  for (auto aspect :
       {TileAspect::Cube, TileAspect::Pencil, TileAspect::Slab}) {
    VariantConfig ot = core::makeOverlapped(
        IntraTileSchedule::ShiftFuse, t, ParallelGranularity::WithinBox);
    ot.aspect = aspect;
    measure("aspect (OT)", ot);
    VariantConfig wf = core::makeBlockedWF(
        t, ParallelGranularity::WithinBox, ComponentLoop::Inside);
    wf.aspect = aspect;
    measure("aspect (WF)", wf);
  }

  // (c) tile traversal order for overlapped tiles.
  for (auto order :
       {core::TileOrder::Lexicographic, core::TileOrder::Morton}) {
    VariantConfig cfg = core::makeOverlapped(
        IntraTileSchedule::ShiftFuse, t, ParallelGranularity::OverBoxes);
    cfg.order = order;
    measure("tile order", cfg);
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout
      << "\nreading: hybrid granularity combines P>=Box load balancing\n"
         "with P<Box's fine grain (useful when boxes-per-thread is small\n"
         "and uneven); pencil tiles keep full unit-stride streams at the\n"
         "cost of tile-level parallelism — the Rivera-Tseng tradeoff.\n";
  return 0;
}
