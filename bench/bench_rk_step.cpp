// Whole-RK-step fusion bench (docs/perf.md "Step fusion"): staged vs
// fused vs comm-avoiding lazy step graphs (core/stepgraph) against the
// eager per-stage loop, across schemes, box sizes, and thread counts.
// Fused graphs let stage-(i+1) interior tasks start while stage-i fringe
// tasks drain, and amortize one pool dispatch over the whole step;
// comm-avoiding additionally collapses the per-stage exchanges into one
// deepened exchange plus halo recomputation. All modes are bit-identical
// to eager (tests/solvers), so this bench measures pure scheduling.
//
//   ./bench/bench_rk_step [--scheme all] [--fuse all] [--policy parallel]
//                         [--boxsize 16,32] [--nboxes 8] [--steps 4]
//                         [--window 1] [--threads ...] [--reps 5]
//                         [--csv out.csv] [--json out.json]
//
// --window W > 1 captures W consecutive time steps as one task graph
// under fused/comm-avoiding (cross-timestep fusion).
//
// BENCH_rkstep.json in the repo root is this bench's committed output
// (multi-box and single-box working sets; see docs/perf.md).

#include <omp.h>

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "solvers/integrator.hpp"

using namespace fluxdiv;

namespace {

std::vector<solvers::Scheme> parseSchemeList(const std::string& text) {
  std::vector<solvers::Scheme> out;
  if (text == "all") {
    out.assign(std::begin(solvers::kSchemes),
               std::end(solvers::kSchemes));
    return out;
  }
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    solvers::Scheme s{};
    if (!solvers::parseScheme(item, s)) {
      throw std::invalid_argument("unknown scheme '" + item + "'");
    }
    out.push_back(s);
  }
  return out;
}

std::vector<core::StepFuse> parseFuseList(const std::string& text) {
  std::vector<core::StepFuse> out;
  if (text == "all") {
    out.assign(std::begin(core::kStepFuseModes),
               std::end(core::kStepFuseModes));
    return out;
  }
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    core::StepFuse f{};
    if (!core::parseStepFuse(item, f)) {
      throw std::invalid_argument("unknown fuse mode '" + item + "'");
    }
    out.push_back(f);
  }
  return out;
}

/// A level of `nBoxes` boxes of side `n` along x (periodic), exemplar
/// initial state.
grid::DisjointBoxLayout rowLayout(int n, int nBoxes) {
  const grid::Box domain(grid::IntVect::zero(),
                         grid::IntVect(n * nBoxes - 1, n - 1, n - 1));
  return grid::DisjointBoxLayout(grid::ProblemDomain(domain), n);
}

/// Min wall seconds per time step over `reps` measurements of `steps`
/// time steps advanced in `window`-step chunks: window 1 times the
/// per-step graphs; window > 1 captures `window` consecutive steps as
/// ONE task graph under fused/comm-avoiding (cross-timestep fusion;
/// eager and staged always advance step by step). One warm-up chunk
/// captures the graph outside the timed region.
double timeStep(solvers::Scheme scheme, core::StepFuse fuse,
                core::LevelPolicy policy, const core::VariantConfig& cfg,
                const grid::DisjointBoxLayout& dbl, int threads, int steps,
                int window, int reps) {
  grid::LevelData u(dbl, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(u);
  solvers::FluxDivRhs rhs(cfg, threads);
  solvers::TimeIntegrator integ(scheme, dbl);
  integ.setStepFuse(fuse);
  integ.setLevelPolicy(policy);
  const grid::Real dt = 1e-4;
  const int chunks = std::max(1, steps / window);
  omp_set_num_threads(threads);
  integ.advanceSteps(u, dt, rhs, window); // warm-up: capture + first touch
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    harness::Timer t;
    for (int c = 0; c < chunks; ++c) {
      integ.advanceSteps(u, dt, rhs, window);
    }
    const double secs = t.seconds() / (chunks * window);
    if (r == 0 || secs < best) {
      best = secs;
    }
  }
  return best;
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  args.addString("scheme", "all",
                 "comma-separated schemes (euler/midpoint/ssprk3/rk4) "
                 "or 'all'");
  args.addString("fuse", "all",
                 "comma-separated step-fuse modes "
                 "(eager/staged/fused/commavoid) or 'all'");
  args.addString("policy", "parallel",
                 "level policy for the step-graph task granularity "
                 "(sequential/parallel/hybrid)");
  args.addIntList("boxsize", {16, 32}, "box sides to sweep");
  args.addInt("nboxes", 8, "boxes per level (1 = single-box working set)");
  args.addInt("steps", 4, "time steps per timed measurement");
  args.addInt("window", 1,
              "steps captured per graph (W>1 = cross-timestep fusion)");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  std::vector<solvers::Scheme> schemes;
  std::vector<core::StepFuse> fuses;
  core::LevelPolicy policy{};
  try {
    schemes = parseSchemeList(args.getString("scheme"));
    fuses = parseFuseList(args.getString("fuse"));
    if (!core::parseLevelPolicy(args.getString("policy"), policy)) {
      throw std::invalid_argument("unknown policy '" +
                                  args.getString("policy") + "'");
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  bench::printHeader("Whole-RK-step fusion: staged vs fused vs "
                     "comm-avoiding step graphs",
                     args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const int steps = static_cast<int>(args.getInt("steps"));
  const int window =
      std::max(1, static_cast<int>(args.getInt("window")));
  const int nBoxes = static_cast<int>(args.getInt("nboxes"));
  const std::vector<int> threads = bench::threadSweep(args);
  // Under the hybrid policy use an overlapped-tile family so RHS and
  // combine tasks decompose per tile (sparse cross-stage tiling);
  // otherwise the fused shift-fuse schedule.
  const core::VariantConfig cfg =
      policy == core::LevelPolicy::Hybrid
          ? core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 8,
                                 core::ParallelGranularity::HybridBoxTile)
          : core::makeShiftFuse(core::ParallelGranularity::WithinBox);

  harness::Table table({"scheme", "boxes", "fuse", "threads", "s/step",
                        "vs staged"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"scheme", "boxsize", "nboxes", "fuse", "policy",
                          "window", "threads", "seconds_per_step"});
  bench::JsonWriter json(args.getString("json"));

  for (const solvers::Scheme scheme : schemes) {
    for (const int n : args.getIntList("boxsize")) {
      const grid::DisjointBoxLayout dbl = rowLayout(n, nBoxes);
      for (const int t : threads) {
        double stagedSecs = 0.0;
        for (const core::StepFuse fuse : fuses) {
          const double secs = timeStep(scheme, fuse, policy, cfg, dbl, t,
                                       steps, window, reps);
          if (fuse == core::StepFuse::Staged) {
            stagedSecs = secs;
          }
          const std::string boxes =
              std::to_string(nBoxes) + "x" + std::to_string(n) + "^3";
          table.addRow({solvers::schemeName(scheme), boxes,
                        core::stepFuseName(fuse), std::to_string(t),
                        harness::formatSeconds(secs),
                        stagedSecs > 0.0
                            ? harness::formatDouble(stagedSecs / secs, 2) +
                                  "x"
                            : "-"});
          csv.writeRow({solvers::schemeName(scheme), std::to_string(n),
                        std::to_string(nBoxes),
                        core::stepFuseName(fuse),
                        core::levelPolicyName(policy),
                        std::to_string(window), std::to_string(t),
                        harness::formatSeconds(secs)});
          json.record({{"scheme", solvers::schemeName(scheme)},
                       {"fuse", core::stepFuseName(fuse)},
                       {"policy", core::levelPolicyName(policy)}},
                      {{"boxsize", static_cast<double>(n)},
                       {"nboxes", static_cast<double>(nBoxes)},
                       {"window", static_cast<double>(window)},
                       {"threads", static_cast<double>(t)},
                       {"seconds_per_step", secs}});
          std::cerr << "  " << solvers::schemeName(scheme) << " " << boxes
                    << " " << core::stepFuseName(fuse) << " t=" << t
                    << ": " << harness::formatSeconds(secs) << "s/step\n";
        }
      }
    }
  }
  table.print(std::cout);

  std::cout << "\npaper shape check: one lazy whole-step graph beats the "
               "eager per-stage\nloop by eliminating per-sweep fork/joins "
               "and overlapping cross-stage work;\ncomm-avoiding trades "
               "recomputation for exchanges and wins only when the\nhalo "
               "fixed costs dominate (small boxes, many stages — see "
               "fluxdiv_advisor\n--scheme).\n";
  return 0;
}
