// Sec. VI's explanation for why wavefront schedules lose: "During the
// first several wavefronts, there are not enough tiles available to keep
// every core busy." This bench quantifies that analytically from the
// tile-wavefront structure (average available parallelism, fraction of
// fronts narrower than the machine) and measures the blocked-WF vs OT
// gap that results.

#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "sched/tiles.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  args.addInt("boxsize", 128, "box side N");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int n = static_cast<int>(args.getInt("boxsize"));
  bench::printHeader("Wavefront pipeline fill/drain analysis, N=" +
                         std::to_string(n),
                     args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const int threads = bench::threadSweep(args).back();
  std::cout << "threads: " << threads << "\n\n";

  harness::Table table({"T", "tiles", "fronts", "mean tiles/front",
                        "fronts < threads", "WF seconds", "OT seconds",
                        "WF/OT"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"tile", "tiles", "fronts", "mean_width",
                          "narrow_fronts", "wf_seconds", "ot_seconds"});

  bench::Problem problem(n, nWork);
  for (int t : core::kTileSizes) {
    if (t >= n) {
      continue;
    }
    const sched::TileSet tiles(grid::Box::cube(n), t);
    const sched::TileWavefronts fronts(tiles);
    std::size_t narrow = 0;
    for (std::size_t w = 0; w < fronts.count(); ++w) {
      if (fronts.front(w).size() < static_cast<std::size_t>(threads)) {
        ++narrow;
      }
    }
    const double meanWidth =
        double(tiles.size()) / double(fronts.count());

    const auto wfCfg = core::makeBlockedWF(
        t, ParallelGranularity::WithinBox, ComponentLoop::Inside);
    const auto otCfg = core::makeOverlapped(
        IntraTileSchedule::ShiftFuse, t, ParallelGranularity::WithinBox);
    const double wfSecs = bench::timeVariant(wfCfg, problem, threads, reps);
    const double otSecs = bench::timeVariant(otCfg, problem, threads, reps);

    table.addRow({std::to_string(t), std::to_string(tiles.size()),
                  std::to_string(fronts.count()),
                  harness::formatDouble(meanWidth, 1),
                  std::to_string(narrow) + "/" +
                      std::to_string(fronts.count()),
                  harness::formatSeconds(wfSecs),
                  harness::formatSeconds(otSecs),
                  harness::formatDouble(wfSecs / otSecs, 2) + "x"});
    csv.writeRow({std::to_string(t), std::to_string(tiles.size()),
                  std::to_string(fronts.count()),
                  harness::formatDouble(meanWidth, 2),
                  std::to_string(narrow), harness::formatSeconds(wfSecs),
                  harness::formatSeconds(otSecs)});
    std::cerr << "  T=" << t << " WF " << harness::formatSeconds(wfSecs)
              << "s vs OT " << harness::formatSeconds(otSecs) << "s\n";
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nreading: smaller tiles widen the average front (more "
               "parallelism)\nbut multiply synchronization; overlapped "
               "tiles avoid both costs by\nrecomputing boundary fluxes — "
               "the paper's Sec. VI conclusion that\nwavefront schedules "
               "'scaled well but still had a high time cost'.\n";
  return 0;
}
