// Throughput service mode (docs/serving.md): M independent solver
// instances — two schemes x two box sizes by default — admitted into ONE
// shared work-stealing pool (auto admission window, threads + 1), versus
// the same workload run back-to-back through the service (admission
// window 1) and versus plain solo TimeIntegrator runs. Reports
// solves/sec, p50/p99 per-solve latency, pool utilization, and
// steal/domain-crossing counts per thread count. The committed
// BENCH_throughput.json is this bench's --json output.

#include <algorithm>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "serve/solve_service.hpp"
#include "solvers/integrator.hpp"
#include "solvers/rhs.hpp"

namespace fluxdiv {
namespace {

std::vector<solvers::Scheme> parseSchemeList(const std::string& text) {
  std::vector<solvers::Scheme> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    solvers::Scheme s{};
    if (!solvers::parseScheme(item, s)) {
      throw std::invalid_argument("unknown scheme '" + item + "'");
    }
    out.push_back(s);
  }
  return out;
}

/// The bench workload: `copies` solves of every scheme x box size combo.
std::vector<serve::InstanceSpec> buildWorkload(
    const std::vector<solvers::Scheme>& schemes,
    const std::vector<std::int64_t>& boxSizes, int nBoxes, int steps,
    int copies, core::StepFuse fuse, core::LevelPolicy policy) {
  std::vector<serve::InstanceSpec> specs;
  int id = 0;
  for (int c = 0; c < copies; ++c) {
    for (const solvers::Scheme scheme : schemes) {
      for (const std::int64_t n : boxSizes) {
        serve::InstanceSpec spec;
        spec.name = std::string(solvers::schemeName(scheme)) + "-n" +
                    std::to_string(n) + "-" + std::to_string(id++);
        spec.scheme = scheme;
        spec.boxSize = static_cast<int>(n);
        spec.nBoxes = nBoxes;
        spec.steps = steps;
        spec.autoFuse = false;
        spec.fuse = fuse;
        spec.autoPolicy = false;
        spec.policy = policy;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

/// Solo reference: every spec solved back-to-back by a private
/// TimeIntegrator (own executor, own pool) — the pre-service baseline.
/// Returns per-solve latencies.
std::vector<double> soloLatencies(
    const std::vector<serve::InstanceSpec>& specs,
    const core::VariantConfig& cfg, int threads) {
  std::vector<double> lat;
  lat.reserve(specs.size());
  for (const serve::InstanceSpec& spec : specs) {
    const grid::DisjointBoxLayout dbl = serve::specLayout(spec);
    grid::LevelData u(dbl, kernels::kNumComp, kernels::kNumGhost);
    kernels::initializeExemplar(u);
    solvers::FluxDivRhs rhs(cfg, threads);
    solvers::TimeIntegrator integ(spec.scheme, dbl);
    integ.setStepFuse(spec.fuse);
    integ.setLevelPolicy(spec.policy);
    harness::Timer t;
    integ.advanceSteps(u, spec.dt, rhs, spec.steps);
    lat.push_back(t.seconds());
  }
  return lat;
}

struct ModeResult {
  double wall = 0;
  harness::LatencySummary latency;
  double utilization = 0;
  std::uint64_t stolen = 0;
  std::uint64_t crossings = 0;
};

/// Fold one service run into the best-of accumulator. Modes are
/// measured interleaved (solo, serial, shared within each rep) so a
/// machine-wide slowdown mid-bench cannot land entirely on one mode.
void keepBest(ModeResult& best, bool first,
              const serve::ServiceReport& rep) {
  if (first || rep.wallSeconds < best.wall) {
    best.wall = rep.wallSeconds;
    best.latency = rep.latency;
    best.utilization = rep.poolUtilization;
    best.stolen = rep.tasksStolen;
    best.crossings = rep.domainCrossings;
  }
}

} // namespace
} // namespace fluxdiv

int main(int argc, char** argv) {
  using namespace fluxdiv;
  harness::Args args;
  bench::addCommonOptions(args);
  args.addString("scheme", "rk4,ssprk3", "comma-separated schemes");
  args.addIntList("boxsize", {16, 24}, "box sides in the workload mix");
  args.addInt("nboxes", 4, "boxes per instance level");
  args.addInt("steps", 4, "time steps per solve");
  args.addInt("copies", 3, "solves per scheme x box-size combo");
  args.addString("fuse", "fused", "step-fuse mode for every instance");
  args.addString("policy", "parallel", "level policy for every instance");
  if (!args.parse(argc, argv)) {
    return 1;
  }

  const std::vector<solvers::Scheme> schemes =
      parseSchemeList(args.getString("scheme"));
  core::StepFuse fuse{};
  core::LevelPolicy policy{};
  if (!core::parseStepFuse(args.getString("fuse"), fuse) ||
      !core::parseLevelPolicy(args.getString("policy"), policy)) {
    std::cerr << "bad --fuse/--policy\n";
    return 1;
  }
  const int reps = static_cast<int>(args.getInt("reps"));
  const int nBoxes = static_cast<int>(args.getInt("nboxes"));
  const int steps = static_cast<int>(args.getInt("steps"));
  const int copies = static_cast<int>(args.getInt("copies"));

  bench::printHeader(
      "Throughput service: concurrent solves over one shared pool", args);

  const std::vector<serve::InstanceSpec> specs =
      buildWorkload(schemes, args.getIntList("boxsize"), nBoxes, steps,
                    copies, fuse, policy);
  const core::VariantConfig cfg =
      core::makeShiftFuse(core::ParallelGranularity::WithinBox);

  harness::Table table({"threads", "mode", "solves/s", "p50 ms", "p99 ms",
                        "util", "vs serial"});
  bench::JsonWriter json(args.getString("json"));

  for (const int t : bench::threadSweep(args)) {
    serve::ServiceOptions serialOpts;
    serialOpts.threads = t;
    serialOpts.maxConcurrent = 1; // back-to-back through the service
    serve::SolveService serialSvc(serialOpts);
    serve::ServiceOptions sharedOpts;
    sharedOpts.threads = t;
    sharedOpts.maxConcurrent = 0; // auto admission window
    serve::SolveService sharedSvc(sharedOpts);

    // Interleave the three modes inside each rep (best-of across reps):
    // later reps hit the services' executor caches — the steady state a
    // long-running service sees — and no mode eats a machine-wide
    // slowdown alone.
    std::vector<double> solo;
    ModeResult serial;
    ModeResult shared;
    for (int r = 0; r < reps; ++r) {
      std::vector<double> lat = soloLatencies(specs, cfg, t);
      if (r == 0 ||
          std::accumulate(lat.begin(), lat.end(), 0.0) <
              std::accumulate(solo.begin(), solo.end(), 0.0)) {
        solo = std::move(lat);
      }
      keepBest(serial, r == 0, serialSvc.run(specs));
      keepBest(shared, r == 0, sharedSvc.run(specs));
    }
    const double soloWall =
        std::accumulate(solo.begin(), solo.end(), 0.0);

    const auto addRow = [&](const char* mode, double wall,
                            const harness::LatencySummary& lat,
                            double util, std::uint64_t stolen,
                            std::uint64_t crossings) {
      const double sps = static_cast<double>(specs.size()) / wall;
      table.addRow({std::to_string(t), mode,
                    harness::formatDouble(sps, 1),
                    harness::formatDouble(lat.p50 * 1e3, 2),
                    harness::formatDouble(lat.p99 * 1e3, 2),
                    harness::formatDouble(util * 100.0, 0) + "%",
                    harness::formatDouble(serial.wall / wall, 2) + "x"});
      json.record({{"mode", mode}},
                  {{"threads", static_cast<double>(t)},
                   {"solves", static_cast<double>(specs.size())},
                   {"wall_s", wall},
                   {"solves_per_s", sps},
                   {"p50_ms", lat.p50 * 1e3},
                   {"p99_ms", lat.p99 * 1e3},
                   {"utilization", util},
                   {"stolen", static_cast<double>(stolen)},
                   {"domain_crossings", static_cast<double>(crossings)},
                   {"speedup_vs_serial", serial.wall / wall}});
      std::cerr << "  t=" << t << " " << mode << ": "
                << harness::formatDouble(sps, 1) << " solves/s, p99 "
                << harness::formatDouble(lat.p99 * 1e3, 2) << " ms\n";
    };

    addRow("solo", soloWall, harness::latencySummary(solo), 0.0, 0, 0);
    addRow("serial", serial.wall, serial.latency, serial.utilization,
           serial.stolen, serial.crossings);
    addRow("shared", shared.wall, shared.latency, shared.utilization,
           shared.stolen, shared.crossings);
  }
  table.print(std::cout);
  return 0;
}
