// Fig. 9 reproduction: fastest execution time over all schedule variants
// for each box size (16, 32, 64, 128) at the full thread count, reported
// separately for parallelization over boxes (P>=Box) and within boxes
// (P<Box). The paper's finding: P>=Box wins for small boxes (too little
// within-box work), the two converge for large boxes.

#include <iostream>
#include <limits>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"

using namespace fluxdiv;
using core::ParallelGranularity;
using core::VariantConfig;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  bench::printHeader("Fig. 9: best performance vs box size", args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const int threads = bench::threadSweep(args).back();
  std::cout << "running every registered variant at " << threads
            << " thread(s)\n\n";

  harness::Table table({"box size", "best P>=Box", "schedule",
                        "best P<Box", "schedule"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"box_size", "granularity", "schedule", "seconds",
                          "is_best"});

  for (int n : {16, 32, 64, 128}) {
    bench::Problem problem(n, nWork);
    double best[2] = {std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::infinity()};
    std::string bestName[2];
    for (const VariantConfig& cfg : core::enumerateVariants(n)) {
      const double secs = bench::timeVariant(cfg, problem, threads, reps);
      const int g = cfg.par == ParallelGranularity::OverBoxes ? 0 : 1;
      std::cerr << "  N=" << n << ' ' << cfg.name() << ": "
                << harness::formatSeconds(secs) << "s\n";
      csv.writeRow({std::to_string(n), g == 0 ? "P>=Box" : "P<Box",
                    cfg.name(), harness::formatSeconds(secs), ""});
      if (secs < best[g]) {
        best[g] = secs;
        bestName[g] = cfg.name();
      }
    }
    table.addRow({std::to_string(n), harness::formatSeconds(best[0]),
                  bestName[0], harness::formatSeconds(best[1]),
                  bestName[1]});
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\npaper shape check (Fig. 9): P>=Box clearly faster at "
               "N=16 (a 16^3 box\nhas ~1 tile worth of within-box work); "
               "the granularities converge by N=128,\nand N=32/64 fall "
               "smoothly between the extremes.\n";
  return 0;
}
