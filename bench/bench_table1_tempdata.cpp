// Table I reproduction: temporary-data footprint per schedule category.
// Prints the paper's analytic formulas evaluated at (N, T, C) next to the
// *measured* per-thread workspace high-water mark of this implementation
// after a real evaluation, plus this implementation's own expected values
// where it deviates (documented in DESIGN.md: e.g. the blocked-wavefront
// co-dimension caches are kept whole rather than as a rolling 2-plane
// window).

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "kernels/exemplar.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::VariantConfig;

namespace {

constexpr double kC = kernels::kNumComp;

double cube(double v) { return v * v * v; }

struct Row {
  VariantConfig cfg;
  std::string paperFormula;
  double paperBytes; ///< formula evaluated at (N, T, C), in Reals * 8
};

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 64, "box side N for the comparison");
  args.addInt("tilesize", 16, "tile side T for tiled schedules");
  args.addInt("threads", 4, "threads (P) for the per-thread OT row");
  args.addString("csv", "", "also write results to this CSV file");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int n = static_cast<int>(args.getInt("boxsize"));
  const int t = static_cast<int>(args.getInt("tilesize"));
  const int p = static_cast<int>(args.getInt("threads"));
  std::cout << "=== Table I: temporary data per schedule (N=" << n
            << ", T=" << t << ", C=" << kernels::kNumComp << ", P=" << p
            << ") ===\n\n";

  const Row rows[] = {
      {core::makeBaseline(ParallelGranularity::OverBoxes,
                          ComponentLoop::Inside),
       "flux C(N+1)^3 + vel (N+1)^3",
       8.0 * (kC + 1.0) * cube(n + 1.0)},
      {core::makeBaseline(ParallelGranularity::OverBoxes,
                          ComponentLoop::Outside),
       "flux C(N+1)^3 (no vel: comp reorder)", 8.0 * kC * cube(n + 1.0)},
      {core::makeShiftFuse(ParallelGranularity::OverBoxes,
                           ComponentLoop::Inside),
       "flux C(2 + 2N + 2N^2)",
       8.0 * kC * (2.0 + 2.0 * n + 2.0 * double(n) * n)},
      {core::makeShiftFuse(ParallelGranularity::OverBoxes,
                           ComponentLoop::Outside),
       "flux (2+2N+2N^2) + vel 3(N+1)^3",
       8.0 * ((2.0 + 2.0 * n + 2.0 * double(n) * n) + 3.0 * cube(n + 1.0))},
      {core::makeBlockedWF(t, ParallelGranularity::WithinBox,
                           ComponentLoop::Inside),
       "flux ~2(3CN^2) (co-dim caches)",
       8.0 * 2.0 * 3.0 * kC * double(n) * n},
      {core::makeBlockedWF(t, ParallelGranularity::WithinBox,
                           ComponentLoop::Outside),
       "flux ~2(3N^2) + vel 3(N+1)^3",
       8.0 * (2.0 * 3.0 * double(n) * n + 3.0 * cube(n + 1.0))},
      {core::makeOverlapped(IntraTileSchedule::ShiftFuse, t,
                            ParallelGranularity::WithinBox),
       "per thread: C(2+2T+2T^2) + 3(T+1)^3",
       8.0 * (kC * (2.0 + 2.0 * t + 2.0 * double(t) * t) +
              3.0 * cube(t + 1.0))},
      {core::makeOverlapped(IntraTileSchedule::Basic, t,
                            ParallelGranularity::WithinBox),
       "per thread: C(T+1)^3", 8.0 * kC * cube(t + 1.0)},
  };

  harness::Table table({"schedule", "paper formula", "paper bytes",
                        "measured/thread", "measured total"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"schedule", "paper_bytes", "measured_per_thread",
                          "measured_total"});

  bench::Problem problem(n, 1);
  for (const Row& row : rows) {
    core::FluxDivRunner runner(row.cfg, p);
    problem.resetOutput();
    runner.run(problem.phi0, problem.phi1);
    table.addRow({row.cfg.name(), row.paperFormula,
                  harness::formatBytes(std::size_t(row.paperBytes)),
                  harness::formatBytes(runner.maxPeakWorkspaceBytes()),
                  harness::formatBytes(runner.totalPeakWorkspaceBytes())});
    csv.writeRow({row.cfg.name(), harness::formatDouble(row.paperBytes, 0),
                  std::to_string(runner.maxPeakWorkspaceBytes()),
                  std::to_string(runner.totalPeakWorkspaceBytes())});
  }
  table.print(std::cout);

  std::cout << "\npaper shape check (Table I): baseline needs O(C N^3)\n"
               "temporaries; shift-fuse cuts flux storage to O(C N^2);\n"
               "overlapped tiles need only tile-sized storage per thread.\n";
  return 0;
}
