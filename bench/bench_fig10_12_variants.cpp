// Figs. 10-12 reproduction: the seven highlighted schedules at N=128 vs
// thread count. Legend (matching the paper's):
//   Baseline: P>=Box            Shift-Fuse: P>=Box
//   Blocked WF-CLO-16: P<Box    Blocked WF-CLI-4: P<Box
//   Shift-Fuse OT-8: P<Box      Basic-Sched OT-16: P<Box
//   Shift-Fuse OT-16: P>=Box    Basic-Sched OT-16: P>=Box
// The paper marks the per-machine best tile size with a diamond; here we
// include both of the commonly-winning tile sizes (8 and 16).

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::VariantConfig;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  args.addInt("boxsize", 128, "box side (the paper plots N=128)");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int n = static_cast<int>(args.getInt("boxsize"));
  bench::printHeader("Figs. 10-12: highlighted schedules at N=" +
                         std::to_string(n),
                     args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const auto threads = bench::threadSweep(args);

  const VariantConfig schedules[] = {
      core::makeBaseline(ParallelGranularity::OverBoxes),
      core::makeShiftFuse(ParallelGranularity::OverBoxes),
      core::makeBlockedWF(16, ParallelGranularity::WithinBox,
                          ComponentLoop::Outside),
      core::makeBlockedWF(4, ParallelGranularity::WithinBox,
                          ComponentLoop::Inside),
      core::makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                           ParallelGranularity::WithinBox),
      core::makeOverlapped(IntraTileSchedule::Basic, 16,
                           ParallelGranularity::WithinBox),
      core::makeOverlapped(IntraTileSchedule::ShiftFuse, 16,
                           ParallelGranularity::OverBoxes),
      core::makeOverlapped(IntraTileSchedule::Basic, 16,
                           ParallelGranularity::OverBoxes),
  };

  std::vector<std::string> header = {"schedule"};
  for (int t : threads) {
    header.push_back("t=" + std::to_string(t));
  }
  harness::Table table(header);
  harness::CsvWriter csv(args.getString("csv"),
                         {"schedule", "threads", "seconds"});
  bench::JsonWriter json(args.getString("json"));

  bench::Problem problem(n, nWork);
  for (const VariantConfig& cfg : schedules) {
    if (!cfg.validFor(n)) {
      continue;
    }
    std::vector<std::string> row = {cfg.name()};
    for (int t : threads) {
      const double secs = bench::timeVariant(cfg, problem, t, reps);
      row.push_back(harness::formatSeconds(secs));
      csv.writeRow({cfg.name(), std::to_string(t),
                    harness::formatSeconds(secs)});
      json.record({{"schedule", cfg.name()}},
                  {{"threads", static_cast<double>(t)},
                   {"boxsize", static_cast<double>(n)},
                   {"seconds", secs}});
      std::cerr << "  " << cfg.name() << " t=" << t << ": "
                << harness::formatSeconds(secs) << "s\n";
    }
    table.addRow(std::move(row));
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout
      << "\npaper shape check (Figs. 10-12): overlapped tiling variants\n"
         "scale best and win outright; blocked wavefronts scale but sit\n"
         "offset above (pipeline fill/drain cost); baseline flattens\n"
         "after a few threads; shift-fuse alone lands in between.\n";
  return 0;
}
