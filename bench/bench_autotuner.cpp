// Sec. VII's concluding direction, made runnable: "it would be beneficial
// to determine ways to automate the automatic implementation, selection,
// and tuning of such inter-loop program optimizations". This bench runs
// the empirical auto-tuner at each box size, with and without
// traffic-model pruning, and reports how close pruned search gets to
// exhaustive search at what fraction of the tuning cost.

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "tuner/autotuner.hpp"

using namespace fluxdiv;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  bench::printHeader("Auto-tuned schedule selection (Sec. VII direction)",
                     args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const int threads = bench::threadSweep(args).back();

  harness::Table table({"N", "mode", "winner", "seconds", "candidates",
                        "pruned", "tuning time (s)"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"N", "mode", "winner", "seconds", "candidates",
                          "pruned", "tuning_seconds"});

  for (int n : {16, 32, 64, 128}) {
    bench::Problem problem(n, nWork);
    for (bool prune : {false, true}) {
      tuner::TuneOptions opts;
      opts.threads = threads;
      opts.reps = reps;
      opts.modelPruning = prune;
      harness::Timer t;
      const tuner::TuneResult result =
          tuner::autotune(problem.phi0, problem.phi1, opts);
      const double tuningSecs = t.seconds();
      table.addRow(
          {std::to_string(n), prune ? "model-pruned" : "exhaustive",
           result.best.name(), harness::formatSeconds(result.bestSeconds),
           std::to_string(result.measurements.size()),
           std::to_string(result.prunedCount),
           harness::formatSeconds(tuningSecs)});
      csv.writeRow(
          {std::to_string(n), prune ? "pruned" : "exhaustive",
           result.best.name(), harness::formatSeconds(result.bestSeconds),
           std::to_string(result.measurements.size()),
           std::to_string(result.prunedCount),
           harness::formatSeconds(tuningSecs)});
      std::cerr << "  N=" << n << (prune ? " pruned" : " exhaustive")
                << " -> " << result.best.name() << '\n';
    }
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nreading: model-based pruning should cut tuning time "
               "substantially while\nselecting a winner within noise of "
               "the exhaustive search's.\n";
  return 0;
}
