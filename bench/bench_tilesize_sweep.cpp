// Sec. VI tile-size finding: "we also tested all tiled implementations
// with tile sizes of 4, 8, 16, and 32 [and] found that in general tile
// sizes of 8 and 16 were the most efficient" (size-32 tiles spill the
// cache; size-4 tiles pay loop overhead). This bench sweeps T for every
// tiled family at a fixed thread count.

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::VariantConfig;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  args.addInt("boxsize", 128, "box side N (the paper sweeps at N=128)");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int n = static_cast<int>(args.getInt("boxsize"));
  bench::printHeader("Tile-size sweep at N=" + std::to_string(n), args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const int threads = bench::threadSweep(args).back();
  std::cout << "threads: " << threads << "\n\n";

  struct Family {
    const char* label;
    VariantConfig (*make)(int t);
  };
  const Family families[] = {
      {"Blocked WF-CLO: P<Box",
       [](int t) {
         return core::makeBlockedWF(t, ParallelGranularity::WithinBox,
                                    ComponentLoop::Outside);
       }},
      {"Blocked WF-CLI: P<Box",
       [](int t) {
         return core::makeBlockedWF(t, ParallelGranularity::WithinBox,
                                    ComponentLoop::Inside);
       }},
      {"Shift-Fuse OT: P<Box",
       [](int t) {
         return core::makeOverlapped(IntraTileSchedule::ShiftFuse, t,
                                     ParallelGranularity::WithinBox);
       }},
      {"Basic-Sched OT: P<Box",
       [](int t) {
         return core::makeOverlapped(IntraTileSchedule::Basic, t,
                                     ParallelGranularity::WithinBox);
       }},
      {"Shift-Fuse OT: P>=Box",
       [](int t) {
         return core::makeOverlapped(IntraTileSchedule::ShiftFuse, t,
                                     ParallelGranularity::OverBoxes);
       }},
      {"Basic-Sched OT: P>=Box",
       [](int t) {
         return core::makeOverlapped(IntraTileSchedule::Basic, t,
                                     ParallelGranularity::OverBoxes);
       }},
  };

  std::vector<std::string> header = {"family"};
  for (int t : core::kTileSizes) {
    header.push_back("T=" + std::to_string(t));
  }
  harness::Table table(header);
  harness::CsvWriter csv(args.getString("csv"),
                         {"family", "tile_size", "seconds"});

  bench::Problem problem(n, nWork);
  for (const Family& fam : families) {
    std::vector<std::string> row = {fam.label};
    for (int t : core::kTileSizes) {
      const VariantConfig cfg = fam.make(t);
      if (!cfg.validFor(n)) {
        row.push_back("-");
        continue;
      }
      const double secs = bench::timeVariant(cfg, problem, threads, reps);
      row.push_back(harness::formatSeconds(secs));
      csv.writeRow({fam.label, std::to_string(t),
                    harness::formatSeconds(secs)});
      std::cerr << "  " << fam.label << " T=" << t << ": "
                << harness::formatSeconds(secs) << "s\n";
    }
    table.addRow(std::move(row));
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\npaper shape check: T=8 and T=16 are generally fastest; "
               "T=32 spills\nthe last-level cache and T=4 pays loop "
               "overhead.\n";
  return 0;
}
