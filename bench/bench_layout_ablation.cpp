// Sec. III-C layout ablation: Chombo's [x,y,z,c] layout puts a cell's
// components far apart, which the paper notes is "somewhat
// disadvantageous" for flux kernels; changing it requires "repack[ing]
// all the cell data for some segment of code". This bench prices that
// option: component-major compute in place (the reference kernel's
// access pattern) vs pack-to-interleaved + AoS compute + unpack, with
// the kernel-only and end-to-end times separated so the repack overhead
// is visible.

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "kernels/init.hpp"
#include "kernels/layout.hpp"
#include "kernels/reference.hpp"

using namespace fluxdiv;

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("reps", 3, "timed repetitions (minimum reported)");
  args.addString("csv", "", "also write results to this CSV file");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int reps = static_cast<int>(args.getInt("reps"));

  std::cout << "=== Sec. III-C layout ablation: [x,y,z,c] vs interleaved "
               "[c,x,y,z] ===\n\n";
  harness::Table table({"N", "SoA in place (s)", "AoS kernel (s)",
                        "pack+unpack (s)", "AoS total (s)", "verdict"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"N", "soa_seconds", "aos_kernel_seconds",
                          "repack_seconds", "aos_total_seconds"});

  for (int n : {16, 32, 64}) {
    const grid::Box valid = grid::Box::cube(n);
    grid::FArrayBox phi0(valid.grow(kernels::kNumGhost),
                         kernels::kNumComp);
    grid::FArrayBox phi1(valid, kernels::kNumComp);
    kernels::initializeExemplar(phi0, valid);

    auto minOver = [&](auto&& f) {
      double best = 0.0;
      for (int r = 0; r < reps + 1; ++r) {
        harness::Timer t;
        f();
        const double s = t.seconds();
        if (r == 1 || (r > 1 && s < best)) {
          best = s;
        }
      }
      return best;
    };

    const double soa = minOver([&] {
      phi1.setVal(0.0);
      kernels::referenceFluxDiv(phi0, phi1, valid);
    });

    kernels::AosFab aosPhi0(phi0.box(), kernels::kNumComp);
    kernels::AosFab aosPhi1(valid, kernels::kNumComp);
    const double aosKernel = minOver([&] {
      kernels::aosFluxDiv(aosPhi0, aosPhi1, valid, 1.0);
    });
    const double repack = minOver([&] {
      kernels::packAos(phi0, aosPhi0, phi0.box());
      kernels::unpackAos(aosPhi1, phi1, valid);
    });

    const double total = aosKernel + repack;
    table.addRow({std::to_string(n), harness::formatSeconds(soa),
                  harness::formatSeconds(aosKernel),
                  harness::formatSeconds(repack),
                  harness::formatSeconds(total),
                  total < soa ? "repack pays off" : "stay in place"});
    csv.writeRow({std::to_string(n), harness::formatSeconds(soa),
                  harness::formatSeconds(aosKernel),
                  harness::formatSeconds(repack),
                  harness::formatSeconds(total)});
  }
  table.print(std::cout);
  std::cout << "\nreading: the interleaved kernel touches the velocity "
               "component\nadjacent to each value, but the pack/unpack "
               "passes stream the whole\nbox twice — the paper's reason "
               "for leaving the layout alone.\n";
  return 0;
}
