// Fig. 1 reproduction: ratio of total (valid + ghost) cells to physical
// cells as a function of box size, for 3-D and 4-D problems with 2 and 5
// ghost layers. The analytic curve is (1 + 2g/N)^D; the D=3, g=2 row is
// additionally *measured* from a real LevelData allocation, and the
// per-exchange ghost traffic is reported (the overhead large boxes avoid).

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "kernels/exemplar.hpp"

using namespace fluxdiv;

int main(int argc, char** argv) {
  harness::Args args;
  args.addString("csv", "", "also write results to this CSV file");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  std::cout << "=== Fig. 1: total cells / physical cells vs box size ===\n"
            << "analytic ratio = (1 + 2g/N)^D; measured column from a real\n"
            << "LevelData allocation with D=3, g=2 on a 128^3 domain.\n\n";

  harness::Table table({"N", "3D g=2", "3D g=5", "4D g=2", "4D g=5",
                        "measured 3D g=2", "exchange bytes/box"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"N", "d3g2", "d3g5", "d4g2", "d4g5", "measured",
                          "exchange_bytes_per_box"});

  auto ratio = [](int n, int g, int d) {
    return std::pow(1.0 + 2.0 * double(g) / n, d);
  };

  for (int n : {16, 32, 64, 128}) {
    grid::DisjointBoxLayout dbl(
        grid::ProblemDomain(grid::Box::cube(128)), n);
    grid::LevelData level(dbl, kernels::kNumComp, 2);
    const double measured = double(level.totalCellsAllocated()) /
                            double(level.totalCellsValid());
    const double bytesPerBox =
        double(level.exchangeBytes()) / double(level.size());
    table.addRow({std::to_string(n), harness::formatDouble(ratio(n, 2, 3)),
                  harness::formatDouble(ratio(n, 5, 3)),
                  harness::formatDouble(ratio(n, 2, 4)),
                  harness::formatDouble(ratio(n, 5, 4)),
                  harness::formatDouble(measured),
                  harness::formatBytes(std::size_t(bytesPerBox))});
    csv.writeRow({std::to_string(n), harness::formatDouble(ratio(n, 2, 3)),
                  harness::formatDouble(ratio(n, 5, 3)),
                  harness::formatDouble(ratio(n, 2, 4)),
                  harness::formatDouble(ratio(n, 5, 4)),
                  harness::formatDouble(measured),
                  harness::formatDouble(bytesPerBox, 0)});
  }
  table.print(std::cout);

  std::cout << "\npaper shape check: with g=5 the ratio stays above 2.0 "
               "until N > 64;\nlarger boxes cut the ghost overhead "
               "(motivation for 128^3 boxes).\n";
  return 0;
}
