// Motivation experiment (Sec. I/II): measured ghost-exchange cost vs box
// size on a fixed-size domain. Complements Fig. 1's cell-count ratios
// with actual copied bytes and wall time per exchange — the overhead that
// shrinks as boxes grow, which is why the paper pushes toward 128^3.

#include <omp.h>

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

using namespace fluxdiv;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  bench::printHeader("Ghost-exchange cost vs box size", args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const int threads = bench::threadSweep(args).back();

  harness::Table table({"box size", "boxes", "ghost cells/valid",
                        "bytes/exchange", "seconds/exchange"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"box_size", "boxes", "ghost_ratio", "bytes",
                          "seconds"});

  for (int n : {16, 32, 64, 128}) {
    bench::Problem problem(n, nWork);
    grid::LevelData& phi = problem.phi0;
    // Time the exchange (the runner never re-exchanges, so this is the
    // isolated ghost cost).
    double best = 0.0;
    omp_set_num_threads(threads);
    for (int r = 0; r < reps + 1; ++r) {
      harness::Timer t;
      phi.exchange();
      const double s = t.seconds();
      if (r == 1 || (r > 1 && s < best)) {
        best = s;
      }
    }
    const double ghostRatio =
        double(phi.totalCellsAllocated() - phi.totalCellsValid()) /
        double(phi.totalCellsValid());
    table.addRow({std::to_string(n), std::to_string(phi.size()),
                  harness::formatDouble(ghostRatio),
                  harness::formatBytes(phi.exchangeBytes()),
                  harness::formatSeconds(best)});
    csv.writeRow({std::to_string(n), std::to_string(phi.size()),
                  harness::formatDouble(ghostRatio),
                  std::to_string(phi.exchangeBytes()),
                  harness::formatSeconds(best)});
  }
  table.print(std::cout);

  std::cout << "\npaper shape check: ghost volume (and exchange time) "
               "drops steeply\nwith box size — the overhead that motivates "
               "running 128^3 boxes at all.\n";
  return 0;
}
