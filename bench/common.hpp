#pragma once
// Shared driver for the figure/table reproduction binaries: equal-work
// problem construction (the paper holds total cells fixed while varying
// the box size), variant timing, and the standard command-line surface
// (--threads, --nboxes128, --reps, --csv, --paper).

#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/runner.hpp"
#include "grid/leveldata.hpp"
#include "harness/args.hpp"
#include "harness/machine.hpp"
#include "harness/stats.hpp"

namespace fluxdiv::bench {

/// Machine-readable companion to CsvWriter: collects one flat JSON object
/// per record and writes the whole array on destruction (so a crashed run
/// leaves no half-written file behind the comma). An empty path produces
/// a disabled writer whose record() is a no-op. Drives the --json option
/// of the figure benches; docs/perf.md shows the output shape.
class JsonWriter {
public:
  explicit JsonWriter(const std::string& path) : path_(path) {}
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Append one record of string and numeric fields.
  void record(std::vector<std::pair<std::string, std::string>> strings,
              std::vector<std::pair<std::string, double>> numbers);

private:
  std::string path_;
  std::vector<std::string> records_;
};

/// An equal-work problem: a domain of `nWork` 128^3-cell work units
/// decomposed into boxes of side `boxSize`. The paper's full problem is 24
/// work units (50,331,648 cells, Sec. III-C); CI-scale defaults use 1.
struct Problem {
  grid::DisjointBoxLayout layout;
  grid::LevelData phi0;
  grid::LevelData phi1;

  Problem(int boxSize, int nWork);

  /// Reset the output and refresh phi0 ghosts (phi0 is initialized once in
  /// the constructor).
  void resetOutput();
};

/// Minimum wall time (seconds) over `reps` runs of one flux-div evaluation
/// of `problem` under `cfg` with `threads` OpenMP threads.
double timeVariant(const core::VariantConfig& cfg, Problem& problem,
                   int threads, int reps);

/// Same measurement through the task-parallel level executor
/// (core/exec_level) under `policy`. Ghosts are exchanged up front
/// (overlap disabled) so every policy times exactly one evaluation of the
/// same level — the --policy sweep of bench_fig02_04_scaling.
double timeLevelPolicy(const core::VariantConfig& cfg, Problem& problem,
                       int threads, int reps, core::LevelPolicy policy);

/// Parse a comma-separated --policy list ("sequential,parallel,hybrid").
/// Throws std::invalid_argument on an unknown name.
std::vector<core::LevelPolicy> parsePolicyList(const std::string& text);

/// Register the standard options shared by every figure bench.
void addCommonOptions(harness::Args& args);

/// Resolve the thread sweep: --threads if given, else powers of two up to
/// the host's cores.
std::vector<int> threadSweep(const harness::Args& args);

/// Work units from --nboxes128 / --paper (paper scale = 24).
int workUnits(const harness::Args& args);

/// Print the standard run header (machine, problem scale).
void printHeader(const std::string& title, const harness::Args& args);

} // namespace fluxdiv::bench
