// Figs. 2-4 reproduction: execution time vs thread count for
//   - Baseline,   P>=Box, N=16   (the "Chombo today" good case)
//   - Shift-Fuse, P>=Box, N=16   (small boxes improve a bit more)
//   - Baseline,   P>=Box, N=128  (the poor-scaling motivation)
//   - the best shifted/fused overlapped-tile variants at N=128
// on an equal-work problem. The paper ran one figure per machine
// (Magny-Cours / Ivy Bridge / Sandy Bridge); this binary produces the
// same series for whatever node it runs on.

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::VariantConfig;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  args.addString(
      "policy", "",
      "comma-separated level policies (sequential,parallel,hybrid) to "
      "additionally sweep through the task-parallel level executor");
  std::vector<core::LevelPolicy> policies;
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
    policies = bench::parsePolicyList(args.getString("policy"));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  bench::printHeader("Figs. 2-4: thread scaling, N=16 vs N=128", args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const auto threads = bench::threadSweep(args);

  struct Series {
    int boxSize;
    VariantConfig cfg;
  };
  const Series series[] = {
      {16, core::makeBaseline(ParallelGranularity::OverBoxes)},
      {16, core::makeShiftFuse(ParallelGranularity::OverBoxes)},
      {128, core::makeBaseline(ParallelGranularity::OverBoxes)},
      {128, core::makeOverlapped(IntraTileSchedule::ShiftFuse, 16,
                                 ParallelGranularity::OverBoxes)},
      {128, core::makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                 ParallelGranularity::WithinBox)},
  };

  std::vector<std::string> header = {"schedule", "N"};
  for (int t : threads) {
    header.push_back("t=" + std::to_string(t));
  }
  harness::Table table(header);
  harness::CsvWriter csv(args.getString("csv"),
                         {"schedule", "box_size", "threads", "seconds"});
  bench::JsonWriter json(args.getString("json"));

  for (const Series& s : series) {
    bench::Problem problem(s.boxSize, nWork);
    std::vector<std::string> row = {s.cfg.name(),
                                    std::to_string(s.boxSize)};
    for (int t : threads) {
      const double secs = bench::timeVariant(s.cfg, problem, t, reps);
      row.push_back(harness::formatSeconds(secs));
      csv.writeRow({s.cfg.name(), std::to_string(s.boxSize),
                    std::to_string(t), harness::formatSeconds(secs)});
      json.record({{"schedule", s.cfg.name()}},
                  {{"box_size", static_cast<double>(s.boxSize)},
                   {"threads", static_cast<double>(t)},
                   {"seconds", secs}});
      std::cerr << "  " << s.cfg.name() << " N=" << s.boxSize << " t=" << t
                << ": " << harness::formatSeconds(secs) << "s\n";
    }
    table.addRow(std::move(row));
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout
      << "\npaper shape check (Figs. 2-4): Baseline N=16 scales nearly\n"
         "ideally; Baseline N=128 stops scaling after a few threads;\n"
         "Shift-Fuse + overlapped tiling restores N=128 to roughly the\n"
         "N=16 execution time at full thread count.\n";

  if (!policies.empty()) {
    // Level-policy sweep: the same equal-work problem through the
    // task-parallel level executor. 32^3 boxes give a 64-box level per
    // work unit (the multi-box case the executor targets); the single
    // 128^3 box is the no-box-parallelism guard rail.
    struct LevelSeries {
      int boxSize;
      VariantConfig cfg;
    };
    const LevelSeries lseries[] = {
        {32, core::makeShiftFuse(ParallelGranularity::WithinBox)},
        {32, core::makeShiftFuse(ParallelGranularity::WithinBox,
                                 ComponentLoop::Inside)},
        {32, core::makeBlockedWF(8, ParallelGranularity::WithinBox,
                                 ComponentLoop::Outside)},
        {32, core::makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                  ParallelGranularity::WithinBox)},
        {128, core::makeShiftFuse(ParallelGranularity::WithinBox)},
    };
    std::vector<std::string> lheader = {"schedule", "N", "policy"};
    for (int t : threads) {
      lheader.push_back("t=" + std::to_string(t));
    }
    harness::Table ltable(lheader);
    for (const LevelSeries& s : lseries) {
      bench::Problem problem(s.boxSize, nWork);
      const double boxes = static_cast<double>(problem.phi0.size());
      std::vector<double> seq(threads.size(), 0.0);
      for (const core::LevelPolicy policy : policies) {
        std::vector<std::string> row = {s.cfg.name(),
                                        std::to_string(s.boxSize),
                                        core::levelPolicyName(policy)};
        for (std::size_t ti = 0; ti < threads.size(); ++ti) {
          const int t = threads[ti];
          const double secs =
              bench::timeLevelPolicy(s.cfg, problem, t, reps, policy);
          // Speedup vs the box-sequential policy at the same thread
          // count; sweep "sequential" first so the baseline is filled in.
          if (policy == core::LevelPolicy::BoxSequential) {
            seq[ti] = secs;
          }
          const double speedup = seq[ti] > 0 ? seq[ti] / secs : 0.0;
          row.push_back(harness::formatSeconds(secs));
          json.record({{"schedule", s.cfg.name()},
                       {"policy", core::levelPolicyName(policy)}},
                      {{"box_size", static_cast<double>(s.boxSize)},
                       {"boxes", boxes},
                       {"threads", static_cast<double>(t)},
                       {"seconds", secs},
                       {"speedup_vs_sequential", speedup}});
          std::cerr << "  " << s.cfg.name() << " N=" << s.boxSize << " "
                    << core::levelPolicyName(policy) << " t=" << t << ": "
                    << harness::formatSeconds(secs) << "s\n";
        }
        ltable.addRow(std::move(row));
      }
    }
    std::cout << "\nlevel-executor policy sweep (core/exec_level, ghosts "
                 "pre-exchanged):\n\n";
    ltable.print(std::cout);
  }
  return 0;
}
