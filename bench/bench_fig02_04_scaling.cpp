// Figs. 2-4 reproduction: execution time vs thread count for
//   - Baseline,   P>=Box, N=16   (the "Chombo today" good case)
//   - Shift-Fuse, P>=Box, N=16   (small boxes improve a bit more)
//   - Baseline,   P>=Box, N=128  (the poor-scaling motivation)
//   - the best shifted/fused overlapped-tile variants at N=128
// on an equal-work problem. The paper ran one figure per machine
// (Magny-Cours / Ivy Bridge / Sandy Bridge); this binary produces the
// same series for whatever node it runs on.

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::VariantConfig;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  bench::printHeader("Figs. 2-4: thread scaling, N=16 vs N=128", args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const auto threads = bench::threadSweep(args);

  struct Series {
    int boxSize;
    VariantConfig cfg;
  };
  const Series series[] = {
      {16, core::makeBaseline(ParallelGranularity::OverBoxes)},
      {16, core::makeShiftFuse(ParallelGranularity::OverBoxes)},
      {128, core::makeBaseline(ParallelGranularity::OverBoxes)},
      {128, core::makeOverlapped(IntraTileSchedule::ShiftFuse, 16,
                                 ParallelGranularity::OverBoxes)},
      {128, core::makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                 ParallelGranularity::WithinBox)},
  };

  std::vector<std::string> header = {"schedule", "N"};
  for (int t : threads) {
    header.push_back("t=" + std::to_string(t));
  }
  harness::Table table(header);
  harness::CsvWriter csv(args.getString("csv"),
                         {"schedule", "box_size", "threads", "seconds"});

  for (const Series& s : series) {
    bench::Problem problem(s.boxSize, nWork);
    std::vector<std::string> row = {s.cfg.name(),
                                    std::to_string(s.boxSize)};
    for (int t : threads) {
      const double secs = bench::timeVariant(s.cfg, problem, t, reps);
      row.push_back(harness::formatSeconds(secs));
      csv.writeRow({s.cfg.name(), std::to_string(s.boxSize),
                    std::to_string(t), harness::formatSeconds(secs)});
      std::cerr << "  " << s.cfg.name() << " N=" << s.boxSize << " t=" << t
                << ": " << harness::formatSeconds(secs) << "s\n";
    }
    table.addRow(std::move(row));
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout
      << "\npaper shape check (Figs. 2-4): Baseline N=16 scales nearly\n"
         "ideally; Baseline N=128 stops scaling after a few threads;\n"
         "Shift-Fuse + overlapped tiling restores N=128 to roughly the\n"
         "N=16 execution time at full thread count.\n";
  return 0;
}
