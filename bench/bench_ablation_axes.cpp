// Ablation over the paper's optimization axes (Sec. IV): starting from
// the baseline, enable one ingredient at a time and report what each
// buys at a fixed box size and thread count:
//   baseline (series of loops)            -> no optimization
//   + shift & fuse                        -> locality, fewer temporaries
//   + tiling with wavefront parallelism   -> cache-sized working sets,
//                                            but pipeline fill/drain
//   + overlapped tiles (recomputation)    -> full parallelism back
// plus the component-loop axis (CLO vs CLI) for each family where both
// exist. This quantifies the tradeoff triangle of the title.

#include <iostream>

#include "common.hpp"
#include "harness/csv.hpp"
#include "harness/table.hpp"

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;
using core::VariantConfig;

int main(int argc, char** argv) {
  harness::Args args;
  bench::addCommonOptions(args);
  args.addInt("boxsize", 128, "box side N");
  args.addInt("tilesize", 8, "tile side for the tiled steps");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  const int n = static_cast<int>(args.getInt("boxsize"));
  const int t = static_cast<int>(args.getInt("tilesize"));
  bench::printHeader("Ablation of the optimization axes, N=" +
                         std::to_string(n),
                     args);
  const int nWork = bench::workUnits(args);
  const int reps = static_cast<int>(args.getInt("reps"));
  const int threads = bench::threadSweep(args).back();
  std::cout << "threads: " << threads << ", tile: " << t << "\n\n";

  struct Step {
    const char* axis;
    VariantConfig cfg;
  };
  const Step steps[] = {
      {"baseline (series of loops), CLI",
       core::makeBaseline(ParallelGranularity::OverBoxes,
                          ComponentLoop::Inside)},
      {"axis 1: component loop outside (CLO)",
       core::makeBaseline(ParallelGranularity::OverBoxes)},
      {"axis 2: + shift & fuse (CLO)",
       core::makeShiftFuse(ParallelGranularity::OverBoxes)},
      {"axis 2': shift & fuse, CLI",
       core::makeShiftFuse(ParallelGranularity::OverBoxes,
                           ComponentLoop::Inside)},
      {"axis 3: + tiling, wavefront parallel (CLI)",
       core::makeBlockedWF(t, ParallelGranularity::WithinBox,
                           ComponentLoop::Inside)},
      {"axis 4: + overlap/recompute (Shift-Fuse OT)",
       core::makeOverlapped(IntraTileSchedule::ShiftFuse, t,
                            ParallelGranularity::WithinBox)},
      {"axis 4': overlap without fusion (Basic OT)",
       core::makeOverlapped(IntraTileSchedule::Basic, t,
                            ParallelGranularity::WithinBox)},
  };

  harness::Table table({"step", "schedule", "seconds", "vs baseline",
                        "temp/thread"});
  harness::CsvWriter csv(args.getString("csv"),
                         {"step", "schedule", "seconds", "speedup",
                          "temp_bytes"});

  bench::Problem problem(n, nWork);
  double baselineSecs = 0.0;
  for (const Step& step : steps) {
    if (!step.cfg.validFor(n)) {
      continue;
    }
    core::FluxDivRunner runner(step.cfg, threads);
    problem.resetOutput();
    runner.run(problem.phi0, problem.phi1); // warm-up + temp accounting
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      problem.resetOutput();
      harness::Timer timer;
      runner.run(problem.phi0, problem.phi1);
      const double s = timer.seconds();
      if (r == 0 || s < best) {
        best = s;
      }
    }
    if (baselineSecs == 0.0) {
      baselineSecs = best;
    }
    table.addRow({step.axis, step.cfg.name(),
                  harness::formatSeconds(best),
                  harness::formatDouble(baselineSecs / best, 2) + "x",
                  harness::formatBytes(runner.maxPeakWorkspaceBytes())});
    csv.writeRow({step.axis, step.cfg.name(),
                  harness::formatSeconds(best),
                  harness::formatDouble(baselineSecs / best, 3),
                  std::to_string(runner.maxPeakWorkspaceBytes())});
    std::cerr << "  " << step.axis << ": " << harness::formatSeconds(best)
              << "s\n";
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nreading: each axis trades among the title's three "
               "quantities —\nparallelism (wavefront loses it, overlap "
               "restores it), locality\n(fusion and tiling), and "
               "recomputation (overlap's price).\n";
  return 0;
}
