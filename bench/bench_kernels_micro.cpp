// google-benchmark microbenchmarks of the kernel building blocks and the
// per-box schedule executors: cost per face of EvalFlux1/EvalFlux2 and
// per-cell cost of each schedule family on a single box. These are the
// numbers the inter-loop scheduling tradeoffs move around.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "kernels/gradient.hpp"
#include "kernels/layout.hpp"
#include "kernels/pencil.hpp"
#include "kernels/reference.hpp"

namespace {

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;

void BM_EvalFlux1(benchmark::State& state) {
  std::vector<grid::Real> col(1024, 1.5);
  std::size_t i = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::evalFlux1(col.data() + i, 1));
    i = (i + 1) % 1020 + 2;
  }
}
BENCHMARK(BM_EvalFlux1);

void BM_EvalFlux1Strided(benchmark::State& state) {
  const std::int64_t stride = state.range(0);
  std::vector<grid::Real> data(
      static_cast<std::size_t>(stride) * 8 + 16, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::evalFlux1(data.data() + 2 * stride, stride));
  }
}
BENCHMARK(BM_EvalFlux1Strided)->Arg(1)->Arg(64)->Arg(4096);

void BM_FaceFlux(benchmark::State& state) {
  std::vector<grid::Real> c(64, 1.1), v(64, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::faceFlux(c.data() + 8, v.data() + 8, 1));
  }
}
BENCHMARK(BM_FaceFlux);

/// One serial box evaluation per schedule family; reports ns/cell.
void BM_BoxEvaluation(benchmark::State& state,
                      const core::VariantConfig& cfg) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi0(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  grid::FArrayBox phi1(valid, kernels::kNumComp);
  kernels::initializeExemplar(phi0, valid);
  core::FluxDivRunner runner(cfg, 1);
  for (auto _ : state) {
    runner.runBox(phi0, phi1, valid);
    benchmark::DoNotOptimize(phi1.dataPtr(0)[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}

void BM_Baseline(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeBaseline(ParallelGranularity::OverBoxes));
}
BENCHMARK(BM_Baseline)->Arg(16)->Arg(32)->Arg(64);

void BM_ShiftFuseCLI(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeShiftFuse(ParallelGranularity::OverBoxes,
                                       ComponentLoop::Inside));
}
BENCHMARK(BM_ShiftFuseCLI)->Arg(16)->Arg(32)->Arg(64);

void BM_ShiftFuseCLO(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeShiftFuse(ParallelGranularity::OverBoxes,
                                       ComponentLoop::Outside));
}
BENCHMARK(BM_ShiftFuseCLO)->Arg(16)->Arg(32)->Arg(64);

void BM_OverlappedShiftFuse8(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                        ParallelGranularity::OverBoxes));
}
BENCHMARK(BM_OverlappedShiftFuse8)->Arg(16)->Arg(32)->Arg(64);

void BM_BlockedWF8(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeBlockedWF(8, ParallelGranularity::OverBoxes,
                                       ComponentLoop::Inside));
}
BENCHMARK(BM_BlockedWF8)->Arg(16)->Arg(32)->Arg(64);

/// Sec. III-C implementation claim: accessor-per-element indexing vs the
/// pointer-cached kernels. Run next to BM_Baseline for the same N.
void BM_NaiveIndexing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi0(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  grid::FArrayBox phi1(valid, kernels::kNumComp);
  kernels::initializeExemplar(phi0, valid);
  for (auto _ : state) {
    kernels::referenceFluxDivNaive(phi0, phi1, valid);
    benchmark::DoNotOptimize(phi1.dataPtr(0)[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}
BENCHMARK(BM_NaiveIndexing)->Arg(16)->Arg(32);

void BM_PointerCachedReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi0(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  grid::FArrayBox phi1(valid, kernels::kNumComp);
  kernels::initializeExemplar(phi0, valid);
  for (auto _ : state) {
    kernels::referenceFluxDiv(phi0, phi1, valid);
    benchmark::DoNotOptimize(phi1.dataPtr(0)[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}
BENCHMARK(BM_PointerCachedReference)->Arg(16)->Arg(32);

/// Gradient on the component-major layout (its good case, Sec. III-C)...
void BM_GradientSoA(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  grid::FArrayBox grad(valid, 3);
  kernels::initializeExemplar(phi, valid);
  for (auto _ : state) {
    kernels::gradient(phi, grad, valid, 0);
    benchmark::DoNotOptimize(grad.dataPtr(0)[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}
BENCHMARK(BM_GradientSoA)->Arg(32)->Arg(64);

/// ...vs the interleaved layout (strided component columns).
void BM_GradientAoS(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  kernels::initializeExemplar(phi, valid);
  kernels::AosFab aosPhi(phi.box(), kernels::kNumComp);
  kernels::packAos(phi, aosPhi, phi.box());
  kernels::AosFab grad(valid, 3);
  for (auto _ : state) {
    kernels::aosGradient(aosPhi, grad, valid, 0);
    benchmark::DoNotOptimize(grad.data()[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}
BENCHMARK(BM_GradientAoS)->Arg(32)->Arg(64);

// ---------------------------------------------------------------------------
// The pencil fast path vs the scalar seed path (docs/perf.md). Both pairs
// perform the identical EvalFlux1+EvalFlux2 arithmetic over every x-face
// of an N^3 box and accumulate the flux difference into the output; the
// scalar version is the seed executors' fused inner loop — a per-point
// faceFlux call feeding a loop-carried scalar flux carry — while the
// pencil version is the row-wise restructure the executors now use
// (faceFluxPencil + accumulatePencil). BENCH_pencil.json records the
// resulting speedup; run with --json=FILE to regenerate it.
// ---------------------------------------------------------------------------

struct SweepProblem {
  grid::Box valid;
  grid::FArrayBox phi0;
  grid::FArrayBox phi1;

  explicit SweepProblem(int n)
      : valid(grid::Box::cube(n)),
        phi0(valid.grow(kernels::kNumGhost), kernels::kNumComp),
        phi1(valid, kernels::kNumComp) {
    kernels::initializeExemplar(phi0, valid);
    phi1.setVal(0.0);
  }
};

void BM_FaceFluxAccumScalarSeed(benchmark::State& state) {
  SweepProblem pr(static_cast<int>(state.range(0)));
  const grid::FabIndexer ip = pr.phi0.indexer();
  const grid::FabIndexer io = pr.phi1.indexer();
  const grid::Real* pc = pr.phi0.dataPtr(0);
  const grid::Real* pv = pr.phi0.dataPtr(kernels::velocityComp(0));
  grid::Real* out = pr.phi1.dataPtr(0);
  const grid::Box& b = pr.valid;
  const int nx = b.size(0);
  for (auto _ : state) {
    for (int k = b.lo(2); k <= b.hi(2); ++k) {
      for (int j = b.lo(1); j <= b.hi(1); ++j) {
        const std::int64_t a = ip(b.lo(0), j, k);
        grid::Real* orow = out + io(b.lo(0), j, k);
        grid::Real carry = kernels::faceFlux(pc + a, pv + a, 1);
        for (int i = 0; i < nx; ++i) {
          const grid::Real hi =
              kernels::faceFlux(pc + a + i + 1, pv + a + i + 1, 1);
          orow[i] += 0.25 * (hi - carry);
          carry = hi;
        }
      }
    }
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() * b.numPts());
}
BENCHMARK(BM_FaceFluxAccumScalarSeed)->Arg(64)->Arg(128);

void BM_FaceFluxAccumPencil(benchmark::State& state) {
  SweepProblem pr(static_cast<int>(state.range(0)));
  const grid::FabIndexer ip = pr.phi0.indexer();
  const grid::FabIndexer io = pr.phi1.indexer();
  const grid::Real* pc = pr.phi0.dataPtr(0);
  const grid::Real* pv = pr.phi0.dataPtr(kernels::velocityComp(0));
  grid::Real* out = pr.phi1.dataPtr(0);
  const grid::Box& b = pr.valid;
  const int nx = b.size(0);
  std::vector<grid::Real> fface(static_cast<std::size_t>(nx) + 1);
  for (auto _ : state) {
    for (int k = b.lo(2); k <= b.hi(2); ++k) {
      for (int j = b.lo(1); j <= b.hi(1); ++j) {
        const std::int64_t a = ip(b.lo(0), j, k);
        kernels::pencil::faceFluxPencil(pc + a, pv + a, 1, nx + 1,
                                        fface.data());
        kernels::pencil::accumulatePencil(fface.data(), 1, nx, 0.25,
                                          out + io(b.lo(0), j, k));
      }
    }
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() * b.numPts());
}
BENCHMARK(BM_FaceFluxAccumPencil)->Arg(64)->Arg(128);

/// The EvalFlux1-only pair: the seed facePhiPass row loop (no restrict, no
/// simd assertion — the compiler must version for aliasing) vs the pencil
/// kernel, on the strided y-direction stencil.
void BM_EvalFlux1RowScalarSeed(benchmark::State& state) {
  SweepProblem pr(static_cast<int>(state.range(0)));
  const grid::FabIndexer ip = pr.phi0.indexer();
  const grid::FabIndexer io = pr.phi1.indexer();
  const grid::Real* pc = pr.phi0.dataPtr(0);
  grid::Real* out = pr.phi1.dataPtr(0);
  const grid::Box& b = pr.valid;
  const int nx = b.size(0);
  const std::int64_t s = ip.stride(1);
  for (auto _ : state) {
    for (int k = b.lo(2); k <= b.hi(2); ++k) {
      for (int j = b.lo(1); j <= b.hi(1); ++j) {
        const grid::Real* prow = pc + ip(b.lo(0), j, k);
        grid::Real* orow = out + io(b.lo(0), j, k);
        for (int i = 0; i < nx; ++i) {
          orow[i] = kernels::evalFlux1(prow + i, s);
        }
      }
    }
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() * b.numPts());
}
BENCHMARK(BM_EvalFlux1RowScalarSeed)->Arg(64)->Arg(128);

void BM_EvalFlux1RowPencil(benchmark::State& state) {
  SweepProblem pr(static_cast<int>(state.range(0)));
  const grid::FabIndexer ip = pr.phi0.indexer();
  const grid::FabIndexer io = pr.phi1.indexer();
  const grid::Real* pc = pr.phi0.dataPtr(0);
  grid::Real* out = pr.phi1.dataPtr(0);
  const grid::Box& b = pr.valid;
  const int nx = b.size(0);
  const std::int64_t s = ip.stride(1);
  for (auto _ : state) {
    for (int k = b.lo(2); k <= b.hi(2); ++k) {
      for (int j = b.lo(1); j <= b.hi(1); ++j) {
        kernels::pencil::evalFlux1Pencil(pc + ip(b.lo(0), j, k), s, nx,
                                         out + io(b.lo(0), j, k));
      }
    }
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() * b.numPts());
}
BENCHMARK(BM_EvalFlux1RowPencil)->Arg(64)->Arg(128);

void BM_GhostExchange(benchmark::State& state) {
  const int boxSize = static_cast<int>(state.range(0));
  grid::DisjointBoxLayout dbl(grid::ProblemDomain(grid::Box::cube(64)),
                              boxSize);
  grid::LevelData phi(dbl, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(phi);
  for (auto _ : state) {
    phi.exchange();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(phi.exchangeBytes()));
}
BENCHMARK(BM_GhostExchange)->Arg(16)->Arg(32)->Arg(64);

} // namespace

// BENCHMARK_MAIN plus a --json=FILE convenience that expands to google-
// benchmark's JSON file output (the format BENCH_pencil.json is committed
// in); all other flags pass through untouched.
int main(int argc, char** argv) {
  std::vector<std::string> expanded;
  expanded.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      expanded.push_back("--benchmark_out=" + arg.substr(7));
      expanded.push_back("--benchmark_out_format=json");
    } else {
      expanded.push_back(arg);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(expanded.size());
  for (std::string& s : expanded) {
    cargs.push_back(s.data());
  }
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
