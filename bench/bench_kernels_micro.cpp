// google-benchmark microbenchmarks of the kernel building blocks and the
// per-box schedule executors: cost per face of EvalFlux1/EvalFlux2 and
// per-cell cost of each schedule family on a single box. These are the
// numbers the inter-loop scheduling tradeoffs move around.

#include <benchmark/benchmark.h>

#include "core/runner.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "kernels/gradient.hpp"
#include "kernels/layout.hpp"
#include "kernels/reference.hpp"

namespace {

using namespace fluxdiv;
using core::ComponentLoop;
using core::IntraTileSchedule;
using core::ParallelGranularity;

void BM_EvalFlux1(benchmark::State& state) {
  std::vector<grid::Real> col(1024, 1.5);
  std::size_t i = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::evalFlux1(col.data() + i, 1));
    i = (i + 1) % 1020 + 2;
  }
}
BENCHMARK(BM_EvalFlux1);

void BM_EvalFlux1Strided(benchmark::State& state) {
  const std::int64_t stride = state.range(0);
  std::vector<grid::Real> data(
      static_cast<std::size_t>(stride) * 8 + 16, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::evalFlux1(data.data() + 2 * stride, stride));
  }
}
BENCHMARK(BM_EvalFlux1Strided)->Arg(1)->Arg(64)->Arg(4096);

void BM_FaceFlux(benchmark::State& state) {
  std::vector<grid::Real> c(64, 1.1), v(64, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::faceFlux(c.data() + 8, v.data() + 8, 1));
  }
}
BENCHMARK(BM_FaceFlux);

/// One serial box evaluation per schedule family; reports ns/cell.
void BM_BoxEvaluation(benchmark::State& state,
                      const core::VariantConfig& cfg) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi0(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  grid::FArrayBox phi1(valid, kernels::kNumComp);
  kernels::initializeExemplar(phi0, valid);
  core::FluxDivRunner runner(cfg, 1);
  for (auto _ : state) {
    runner.runBox(phi0, phi1, valid);
    benchmark::DoNotOptimize(phi1.dataPtr(0)[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}

void BM_Baseline(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeBaseline(ParallelGranularity::OverBoxes));
}
BENCHMARK(BM_Baseline)->Arg(16)->Arg(32)->Arg(64);

void BM_ShiftFuseCLI(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeShiftFuse(ParallelGranularity::OverBoxes,
                                       ComponentLoop::Inside));
}
BENCHMARK(BM_ShiftFuseCLI)->Arg(16)->Arg(32)->Arg(64);

void BM_ShiftFuseCLO(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeShiftFuse(ParallelGranularity::OverBoxes,
                                       ComponentLoop::Outside));
}
BENCHMARK(BM_ShiftFuseCLO)->Arg(16)->Arg(32)->Arg(64);

void BM_OverlappedShiftFuse8(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeOverlapped(IntraTileSchedule::ShiftFuse, 8,
                                        ParallelGranularity::OverBoxes));
}
BENCHMARK(BM_OverlappedShiftFuse8)->Arg(16)->Arg(32)->Arg(64);

void BM_BlockedWF8(benchmark::State& state) {
  BM_BoxEvaluation(state,
                   core::makeBlockedWF(8, ParallelGranularity::OverBoxes,
                                       ComponentLoop::Inside));
}
BENCHMARK(BM_BlockedWF8)->Arg(16)->Arg(32)->Arg(64);

/// Sec. III-C implementation claim: accessor-per-element indexing vs the
/// pointer-cached kernels. Run next to BM_Baseline for the same N.
void BM_NaiveIndexing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi0(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  grid::FArrayBox phi1(valid, kernels::kNumComp);
  kernels::initializeExemplar(phi0, valid);
  for (auto _ : state) {
    kernels::referenceFluxDivNaive(phi0, phi1, valid);
    benchmark::DoNotOptimize(phi1.dataPtr(0)[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}
BENCHMARK(BM_NaiveIndexing)->Arg(16)->Arg(32);

void BM_PointerCachedReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi0(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  grid::FArrayBox phi1(valid, kernels::kNumComp);
  kernels::initializeExemplar(phi0, valid);
  for (auto _ : state) {
    kernels::referenceFluxDiv(phi0, phi1, valid);
    benchmark::DoNotOptimize(phi1.dataPtr(0)[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}
BENCHMARK(BM_PointerCachedReference)->Arg(16)->Arg(32);

/// Gradient on the component-major layout (its good case, Sec. III-C)...
void BM_GradientSoA(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  grid::FArrayBox grad(valid, 3);
  kernels::initializeExemplar(phi, valid);
  for (auto _ : state) {
    kernels::gradient(phi, grad, valid, 0);
    benchmark::DoNotOptimize(grad.dataPtr(0)[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}
BENCHMARK(BM_GradientSoA)->Arg(32)->Arg(64);

/// ...vs the interleaved layout (strided component columns).
void BM_GradientAoS(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Box valid = grid::Box::cube(n);
  grid::FArrayBox phi(valid.grow(kernels::kNumGhost), kernels::kNumComp);
  kernels::initializeExemplar(phi, valid);
  kernels::AosFab aosPhi(phi.box(), kernels::kNumComp);
  kernels::packAos(phi, aosPhi, phi.box());
  kernels::AosFab grad(valid, 3);
  for (auto _ : state) {
    kernels::aosGradient(aosPhi, grad, valid, 0);
    benchmark::DoNotOptimize(grad.data()[0]);
  }
  state.SetItemsProcessed(state.iterations() * valid.numPts());
}
BENCHMARK(BM_GradientAoS)->Arg(32)->Arg(64);

void BM_GhostExchange(benchmark::State& state) {
  const int boxSize = static_cast<int>(state.range(0));
  grid::DisjointBoxLayout dbl(grid::ProblemDomain(grid::Box::cube(64)),
                              boxSize);
  grid::LevelData phi(dbl, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(phi);
  for (auto _ : state) {
    phi.exchange();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(phi.exchangeBytes()));
}
BENCHMARK(BM_GhostExchange)->Arg(16)->Arg(32)->Arg(64);

} // namespace

BENCHMARK_MAIN();
