#include "common.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/exec_level.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

namespace fluxdiv::bench {

using grid::Box;
using grid::DisjointBoxLayout;
using grid::IntVect;
using grid::ProblemDomain;
using kernels::kNumComp;
using kernels::kNumGhost;

namespace {

DisjointBoxLayout makeLayout(int boxSize, int nWork) {
  // Domain: nWork x 1 x 1 units of 128^3 cells. Box sizes 16..128 divide
  // 128 so every equal-work comparison uses identical global data.
  const Box domainBox(IntVect::zero(),
                      IntVect(128 * nWork - 1, 127, 127));
  return DisjointBoxLayout(ProblemDomain(domainBox), boxSize);
}

} // namespace

Problem::Problem(int boxSize, int nWork)
    : layout(makeLayout(boxSize, nWork)),
      phi0(layout, kNumComp, kNumGhost),
      phi1(layout, kNumComp, kNumGhost) {
  kernels::initializeExemplar(phi0);
}

void Problem::resetOutput() {
  for (std::size_t b = 0; b < phi1.size(); ++b) {
    phi1[b].setVal(0.0);
  }
}

double timeVariant(const core::VariantConfig& cfg, Problem& problem,
                   int threads, int reps) {
  core::FluxDivRunner runner(cfg, threads);
  // One warm-up evaluation (first-touch page faults, workspace growth).
  problem.resetOutput();
  runner.run(problem.phi0, problem.phi1);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    problem.resetOutput();
    harness::Timer t;
    runner.run(problem.phi0, problem.phi1);
    const double s = t.seconds();
    if (r == 0 || s < best) {
      best = s;
    }
  }
  return best;
}

double timeLevelPolicy(const core::VariantConfig& cfg, Problem& problem,
                       int threads, int reps, core::LevelPolicy policy) {
  core::LevelExecutor exec(
      cfg, threads,
      core::LevelExecOptions{policy, /*overlapExchange=*/false});
  problem.resetOutput();
  exec.run(problem.phi0, problem.phi1); // warm-up (page faults, scratch)
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    problem.resetOutput();
    harness::Timer t;
    exec.run(problem.phi0, problem.phi1);
    const double s = t.seconds();
    if (r == 0 || s < best) {
      best = s;
    }
  }
  return best;
}

std::vector<core::LevelPolicy> parsePolicyList(const std::string& text) {
  std::vector<core::LevelPolicy> out;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) {
      continue;
    }
    core::LevelPolicy p = core::LevelPolicy::BoxSequential;
    if (!core::parseLevelPolicy(token, p)) {
      throw std::invalid_argument("--policy: unknown level policy '" +
                                  token + "'");
    }
    out.push_back(p);
  }
  return out;
}

JsonWriter::~JsonWriter() {
  if (path_.empty()) {
    return;
  }
  std::ofstream out(path_);
  if (!out) {
    std::cerr << "warning: could not open " << path_ << " for writing\n";
    return;
  }
  out << "[\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    out << "  " << records_[i] << (i + 1 < records_.size() ? ",\n" : "\n");
  }
  out << "]\n";
}

void JsonWriter::record(
    std::vector<std::pair<std::string, std::string>> strings,
    std::vector<std::pair<std::string, double>> numbers) {
  if (path_.empty()) {
    return;
  }
  // Field names and values come from variant names / option values; none
  // contain characters needing JSON escaping beyond quotes.
  std::string rec = "{";
  bool first = true;
  const auto key = [&](const std::string& k) {
    if (!first) {
      rec += ", ";
    }
    first = false;
    rec += '"' + k + "\": ";
  };
  for (const auto& [k, v] : strings) {
    key(k);
    rec += '"' + v + '"';
  }
  for (const auto& [k, v] : numbers) {
    key(k);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    rec += buf;
  }
  rec += "}";
  records_.push_back(std::move(rec));
}

void addCommonOptions(harness::Args& args) {
  args.addIntList("threads", {},
                  "thread counts to sweep (default: 1,2,4,... up to cores)");
  args.addInt("nboxes128", 1,
              "problem size in 128^3-cell work units (paper: 24)");
  args.addInt("reps", 3, "timed repetitions per point (minimum reported)");
  args.addString("csv", "", "also write results to this CSV file");
  args.addString("json", "",
                 "also write results as a JSON array to this file");
  args.addBool("paper", "paper-scale problem (= --nboxes128 24)");
}

std::vector<int> threadSweep(const harness::Args& args) {
  std::vector<int> sweep;
  for (std::int64_t t : args.getIntList("threads")) {
    sweep.push_back(static_cast<int>(t));
  }
  if (sweep.empty()) {
    const auto info = harness::queryMachine();
    for (std::int64_t t : harness::defaultThreadSweep(info.ompMaxThreads)) {
      sweep.push_back(static_cast<int>(t));
    }
  }
  return sweep;
}

int workUnits(const harness::Args& args) {
  if (args.getBool("paper")) {
    return 24;
  }
  return static_cast<int>(args.getInt("nboxes128"));
}

void printHeader(const std::string& title, const harness::Args& args) {
  std::cout << "=== " << title << " ===\n";
  harness::printMachineReport(std::cout, harness::queryMachine());
  const int nWork = workUnits(args);
  std::cout << "problem: " << nWork << " work unit(s) of 128^3 cells = "
            << (static_cast<long long>(nWork) * 128 * 128 * 128)
            << " cells, " << kernels::kNumComp << " components, "
            << kernels::kNumGhost << " ghosts\n"
            << "timing: min of " << args.getInt("reps")
            << " repetitions (after 1 warm-up)\n\n";
}

} // namespace fluxdiv::bench
