// The paper's study as a tool: run every registered inter-loop scheduling
// variant on a problem of your size/thread count and print a ranked
// table — which schedule should your PDE code use on this machine?
//
//   ./examples/variant_explorer [--boxsize N] [--threads T] [--reps R]

#include <omp.h>

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/runner.hpp"
#include "harness/args.hpp"
#include "harness/machine.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

using namespace fluxdiv;

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 64, "box side length");
  args.addInt("nboxes", 2, "boxes along x (domain = nboxes*N x N x N)");
  args.addInt("threads", omp_get_max_threads(), "OpenMP threads");
  args.addInt("reps", 3, "repetitions (minimum time reported)");
  args.addBool("extensions",
               "also explore the beyond-paper axes (hybrid granularity, "
               "pencil/slab tiles, Morton order)");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int n = static_cast<int>(args.getInt("boxsize"));
  const int nb = static_cast<int>(args.getInt("nboxes"));
  const int threads = static_cast<int>(args.getInt("threads"));
  const int reps = static_cast<int>(args.getInt("reps"));
  const bool extensions = args.getBool("extensions");

  harness::printMachineReport(std::cout, harness::queryMachine());
  grid::ProblemDomain domain(grid::Box(
      grid::IntVect::zero(), grid::IntVect(n * nb - 1, n - 1, n - 1)));
  grid::DisjointBoxLayout layout(domain, n);
  grid::LevelData phi0(layout, kernels::kNumComp, kernels::kNumGhost);
  grid::LevelData phi1(layout, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(phi0);
  std::cout << "exploring " << core::enumerateVariants(n, extensions).size()
            << " variants on " << layout.size() << " box(es) of " << n
            << "^3 with " << threads << " thread(s)\n\n";

  struct Result {
    core::VariantConfig cfg;
    double seconds;
    std::size_t tempBytes;
  };
  std::vector<Result> results;
  for (const core::VariantConfig& cfg :
       core::enumerateVariants(n, extensions)) {
    core::FluxDivRunner runner(cfg, threads);
    double best = 0.0;
    for (int r = 0; r < reps + 1; ++r) { // first iteration = warm-up
      for (std::size_t b = 0; b < phi1.size(); ++b) {
        phi1[b].setVal(0.0);
      }
      harness::Timer t;
      runner.run(phi0, phi1);
      const double s = t.seconds();
      if (r == 1 || (r > 1 && s < best)) {
        best = s;
      }
    }
    results.push_back({cfg, best, runner.maxPeakWorkspaceBytes()});
    std::cerr << "  " << cfg.name() << ": " << harness::formatSeconds(best)
              << "s\n";
  }

  std::sort(results.begin(), results.end(),
            [](const Result& a, const Result& b) {
              return a.seconds < b.seconds;
            });

  harness::Table table(
      {"rank", "schedule", "seconds", "vs best", "temp/thread"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.addRow({std::to_string(i + 1), results[i].cfg.name(),
                  harness::formatSeconds(results[i].seconds),
                  harness::formatDouble(
                      results[i].seconds / results.front().seconds, 2) +
                      "x",
                  harness::formatBytes(results[i].tempBytes)});
  }
  table.print(std::cout);
  std::cout << "\nrecommendation for this machine/problem: "
            << results.front().cfg.name() << '\n';
  return 0;
}
