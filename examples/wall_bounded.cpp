// Wall-bounded solve: the exemplar advanced in a box with slip walls on x
// (ReflectiveWall boundary conditions) and periodic y/z. The odd
// reflection of the normal velocity makes the 4th-order face-interpolated
// wall velocity *exactly* zero, so no flux crosses the walls and every
// component is conserved to round-off even though the domain is closed —
// the finite-volume property of Sec. II at a physical boundary. Writes a
// VTK plotfile of the final state.
//
//   ./examples/wall_bounded [--steps S] [--boxsize N] [--vtk out.vtk]

#include <omp.h>

#include <cmath>
#include <iostream>

#include "grid/bc.hpp"
#include "grid/norms.hpp"
#include "grid/vtk_io.hpp"
#include "harness/args.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "solvers/integrator.hpp"

using namespace fluxdiv;

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 16, "box side length");
  args.addInt("nboxes", 2, "boxes per direction");
  args.addInt("steps", 8, "RK2 time steps");
  args.addDouble("cfl", 0.1, "dt/dx factor");
  args.addString("vtk", "", "write the final state to this VTK file");
  args.addInt("threads", omp_get_max_threads(), "OpenMP threads");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int n = static_cast<int>(args.getInt("boxsize"));
  const int nb = static_cast<int>(args.getInt("nboxes"));
  const int steps = static_cast<int>(args.getInt("steps"));
  const auto dt = static_cast<grid::Real>(args.getDouble("cfl"));
  const int threads = static_cast<int>(args.getInt("threads"));

  // Periodic in y/z, walls on the two x faces.
  grid::ProblemDomain domain(grid::Box::cube(n * nb),
                             std::array<bool, 3>{false, true, true});
  grid::DisjointBoxLayout layout(domain, n);
  grid::BoundarySpec spec;
  spec.type[0] = {grid::BCType::ReflectiveWall,
                  grid::BCType::ReflectiveWall};
  grid::BoundaryFiller walls(layout, spec);

  grid::LevelData u(layout, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(u);
  walls.fill(u);

  const auto initial = grid::levelSums(u);
  std::cout << "wall-bounded channel: " << domain.box() << ", walls on x, "
            << steps << " RK2 steps\n";

  solvers::FluxDivRhs rhs(
      core::makeOverlapped(core::IntraTileSchedule::ShiftFuse,
                           std::min(8, n),
                           core::ParallelGranularity::WithinBox),
      threads, /*invDx=*/1.0, &walls);
  solvers::TimeIntegrator integ(solvers::Scheme::Midpoint, layout);
  for (int s = 0; s < steps; ++s) {
    integ.advance(u, dt, rhs);
  }

  const auto finals = grid::levelSums(u);
  double worst = 0.0;
  for (int c = 0; c < kernels::kNumComp; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    worst = std::max(worst, std::abs(finals[ci] - initial[ci]) /
                                std::abs(initial[ci]));
  }
  std::cout << "relative conservation drift with closed walls: " << worst
            << '\n';

  const std::string vtkPath = args.getString("vtk");
  if (!vtkPath.empty()) {
    grid::VtkWriteOptions opts;
    opts.componentNames = {"rho", "u", "v", "w", "e"};
    grid::writeVtk(vtkPath, u, opts);
    std::cout << "wrote " << vtkPath << '\n';
  }

  if (worst > 1e-11) {
    std::cerr << "wall flux leaked!\n";
    return 1;
  }
  std::cout << "walls are exactly flux-free (odd reflection zeroes the "
               "4th-order face velocity)\n";
  return 0;
}
