// The motivation demo (paper Sec. I, Fig. 1): on a fixed-size domain,
// smaller boxes mean exponentially more ghost cells — more memory and
// more exchange traffic per step — while larger boxes shift the problem
// to on-node scheduling (which the core library then solves). This
// example prints the full cost picture per box size: memory overhead,
// exchange volume, exchange time, and compute time of one step.
//
//   ./examples/ghost_cost [--domain 128] [--threads T]

#include <omp.h>

#include <iostream>

#include "core/runner.hpp"
#include "harness/args.hpp"
#include "harness/machine.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

using namespace fluxdiv;

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("domain", 128, "domain side length (power of two >= 32)");
  args.addInt("threads", omp_get_max_threads(), "OpenMP threads");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int dom = static_cast<int>(args.getInt("domain"));
  const int threads = static_cast<int>(args.getInt("threads"));

  std::cout << "ghost-cell economics on a " << dom << "^3 domain ("
            << threads << " thread(s))\n\n";

  harness::Table table({"box size", "boxes", "memory overhead",
                        "exchange volume", "exchange time",
                        "compute time (best OT)"});

  for (int n : {16, 32, 64, 128}) {
    if (n > dom) {
      continue;
    }
    grid::ProblemDomain domain(grid::Box::cube(dom));
    grid::DisjointBoxLayout layout(domain, n);
    grid::LevelData phi0(layout, kernels::kNumComp, kernels::kNumGhost);
    grid::LevelData phi1(layout, kernels::kNumComp, kernels::kNumGhost);
    kernels::initializeExemplar(phi0);

    omp_set_num_threads(threads);
    harness::Timer tx;
    phi0.exchange();
    const double exchangeSecs = tx.seconds();

    const auto cfg = core::makeOverlapped(
        core::IntraTileSchedule::ShiftFuse, std::min(8, n),
        n >= 64 ? core::ParallelGranularity::WithinBox
                : core::ParallelGranularity::OverBoxes);
    core::FluxDivRunner runner(cfg, threads);
    runner.run(phi0, phi1); // warm-up
    for (std::size_t b = 0; b < phi1.size(); ++b) {
      phi1[b].setVal(0.0);
    }
    harness::Timer tc;
    runner.run(phi0, phi1);
    const double computeSecs = tc.seconds();

    const double overhead = 100.0 *
                            double(phi0.totalCellsAllocated() -
                                   phi0.totalCellsValid()) /
                            double(phi0.totalCellsValid());
    table.addRow({std::to_string(n), std::to_string(layout.size()),
                  harness::formatDouble(overhead, 1) + " %",
                  harness::formatBytes(phi0.exchangeBytes()),
                  harness::formatSeconds(exchangeSecs),
                  harness::formatSeconds(computeSecs)});
  }
  table.print(std::cout);
  std::cout << "\nlarger boxes slash the exchange overhead; the inter-loop\n"
               "schedules in src/core make their compute side scale too.\n";
  return 0;
}
