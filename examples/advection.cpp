// A real time-dependent finite-volume solver built on the exemplar: the
// conservation-law structure of paper Sec. II (Eq. 1/4) advanced with
// forward Euler. Each step exchanges ghosts (the per-step communication
// the paper's box-size tradeoff is about), evaluates the flux divergence
// with a chosen schedule variant, and verifies discrete conservation —
// the finite-volume property Sec. II highlights.
//
//   ./examples/advection [--steps S] [--boxsize N] [--variant ot|baseline]

#include <omp.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <iostream>
#include <utility>

#include "core/runner.hpp"
#include "harness/args.hpp"
#include "harness/timer.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

using namespace fluxdiv;

namespace {

/// Global sum of every component (the conserved totals).
std::array<grid::Real, kernels::kNumComp> totals(const grid::LevelData& u) {
  std::array<grid::Real, kernels::kNumComp> sums{};
  for (std::size_t b = 0; b < u.size(); ++b) {
    for (int c = 0; c < kernels::kNumComp; ++c) {
      sums[static_cast<std::size_t>(c)] += u[b].sum(u.validBox(b), c);
    }
  }
  return sums;
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 32, "box side length");
  args.addInt("nboxes", 2, "boxes per direction");
  args.addInt("steps", 10, "time steps");
  args.addDouble("cfl", 0.2, "CFL-like dt/dx factor");
  args.addString("variant", "ot",
                 "schedule: 'baseline', 'shiftfuse', or 'ot'");
  args.addInt("threads", omp_get_max_threads(), "OpenMP threads");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int n = static_cast<int>(args.getInt("boxsize"));
  const int nb = static_cast<int>(args.getInt("nboxes"));
  const int steps = static_cast<int>(args.getInt("steps"));
  const double dtOverDx = args.getDouble("cfl");
  const int threads = static_cast<int>(args.getInt("threads"));

  core::VariantConfig cfg;
  const std::string variant = args.getString("variant");
  if (variant == "baseline") {
    cfg = core::makeBaseline(core::ParallelGranularity::OverBoxes);
  } else if (variant == "shiftfuse") {
    cfg = core::makeShiftFuse(core::ParallelGranularity::OverBoxes);
  } else if (variant == "ot") {
    cfg = core::makeOverlapped(core::IntraTileSchedule::ShiftFuse,
                               std::min(8, n),
                               core::ParallelGranularity::WithinBox);
  } else {
    std::cerr << "unknown --variant '" << variant << "'\n";
    return 1;
  }

  grid::ProblemDomain domain(grid::Box::cube(n * nb));
  grid::DisjointBoxLayout layout(domain, n);
  grid::LevelData u(layout, kernels::kNumComp, kernels::kNumGhost);
  grid::LevelData uNext(layout, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(u);

  const auto initial = totals(u);
  std::cout << "advecting " << domain.box().numPts() << " cells for "
            << steps << " steps with '" << cfg.name() << "'\n";

  core::FluxDivRunner runner(cfg, threads);
  harness::Timer wall;
  for (int s = 0; s < steps; ++s) {
    // Forward Euler: u^{n+1} = u^n - (dt/dx) * sum_d (F_hi - F_lo).
    // The runner accumulates into its output, so seeding uNext with u^n
    // and accumulating with a negative scale is exactly the update. The
    // per-step exchange is the ghost communication whose cost the paper's
    // box-size tradeoff is about.
    u.exchange();
    for (std::size_t b = 0; b < u.size(); ++b) {
      uNext[b].copy(u[b], u.validBox(b), 0, 0, kernels::kNumComp);
    }
    runner.run(u, uNext, -dtOverDx);
    std::swap(u, uNext);
  }
  const double seconds = wall.seconds();

  const auto finals = totals(u);
  double worstDrift = 0.0;
  for (int c = 0; c < kernels::kNumComp; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    worstDrift = std::max(worstDrift,
                          std::abs(finals[ci] - initial[ci]) /
                              std::abs(initial[ci]));
  }
  std::cout << steps << " steps in " << seconds << " s ("
            << seconds / steps << " s/step incl. exchange)\n"
            << "relative conservation drift (worst component): "
            << worstDrift << '\n';
  if (worstDrift > 1e-11) {
    std::cerr << "conservation violated!\n";
    return 1;
  }
  std::cout << "discrete conservation holds (finite-volume property, "
               "Sec. II)\n";
  return 0;
}
