// End-to-end application of the whole library: auto-tune the inter-loop
// schedule for this machine and problem shape (the paper's Sec. VII
// direction), then run a time-dependent finite-volume solve with the
// winner using the RK4 integrator, with a wall-clock comparison against
// the untuned baseline schedule.
//
//   ./examples/autotuned_solver [--boxsize N] [--steps S] [--threads T]

#include <omp.h>

#include <iostream>

#include "harness/args.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"
#include "solvers/integrator.hpp"
#include "tuner/autotuner.hpp"

using namespace fluxdiv;

namespace {

double solveWith(const core::VariantConfig& cfg, int threads,
                 const grid::DisjointBoxLayout& layout, int steps,
                 grid::Real dt, grid::LevelData& out) {
  kernels::initializeExemplar(out);
  solvers::FluxDivRhs rhs(cfg, threads);
  solvers::TimeIntegrator integ(solvers::Scheme::RK4, layout);
  harness::Timer t;
  for (int s = 0; s < steps; ++s) {
    integ.advance(out, dt, rhs);
  }
  return t.seconds();
}

} // namespace

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 64, "box side length");
  args.addInt("nboxes", 2, "boxes per direction");
  args.addInt("steps", 5, "RK4 time steps");
  args.addDouble("dt", 0.05, "time step");
  args.addInt("threads", omp_get_max_threads(), "OpenMP threads");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int n = static_cast<int>(args.getInt("boxsize"));
  const int nb = static_cast<int>(args.getInt("nboxes"));
  const int steps = static_cast<int>(args.getInt("steps"));
  const auto dt = static_cast<grid::Real>(args.getDouble("dt"));
  const int threads = static_cast<int>(args.getInt("threads"));

  grid::ProblemDomain domain(grid::Box::cube(n * nb));
  grid::DisjointBoxLayout layout(domain, n);

  // Phase 1: tune on a single flux-div evaluation.
  grid::LevelData phi0(layout, kernels::kNumComp, kernels::kNumGhost);
  grid::LevelData phi1(layout, kernels::kNumComp, kernels::kNumGhost);
  kernels::initializeExemplar(phi0);
  tuner::TuneOptions opts;
  opts.threads = threads;
  opts.reps = 2;
  std::cout << "tuning over " << core::enumerateVariants(n).size()
            << " schedule variants...\n";
  harness::Timer tuneTimer;
  const tuner::TuneResult tuned = tuner::autotune(phi0, phi1, opts);
  std::cout << "winner: " << tuned.best.name() << " ("
            << harness::formatSeconds(tuned.bestSeconds) << " s/eval, "
            << tuned.prunedCount << " candidates pruned by the traffic "
            << "model, tuned in "
            << harness::formatSeconds(tuneTimer.seconds()) << " s)\n\n";

  // Phase 2: solve with the winner vs the baseline.
  grid::LevelData uTuned(layout, kernels::kNumComp, kernels::kNumGhost);
  grid::LevelData uBase(layout, kernels::kNumComp, kernels::kNumGhost);
  const double tunedSecs =
      solveWith(tuned.best, threads, layout, steps, dt, uTuned);
  const double baseSecs = solveWith(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), threads,
      layout, steps, dt, uBase);

  harness::Table table({"schedule", "RK4 steps", "wall (s)", "s/step"});
  table.addRow({tuned.best.name(), std::to_string(steps),
                harness::formatSeconds(tunedSecs),
                harness::formatSeconds(tunedSecs / steps)});
  table.addRow({"Baseline-CLO: P>=Box", std::to_string(steps),
                harness::formatSeconds(baseSecs),
                harness::formatSeconds(baseSecs / steps)});
  table.print(std::cout);

  const grid::Real diff = grid::LevelData::maxAbsDiffValid(uTuned, uBase);
  std::cout << "\nmax |tuned - baseline| after " << steps
            << " RK4 steps: " << diff << '\n';
  return diff < 1e-10 ? 0 : 1;
}
