// Quickstart: build a periodic level, evaluate the CFD flux-divergence
// exemplar with the baseline schedule and with the paper's winning
// overlapped-tile schedule, and check they agree.
//
//   ./examples/quickstart [--boxsize N] [--threads T]

#include <omp.h>

#include <iostream>

#include "core/runner.hpp"
#include "harness/args.hpp"
#include "harness/timer.hpp"
#include "kernels/exemplar.hpp"
#include "kernels/init.hpp"

using namespace fluxdiv;

int main(int argc, char** argv) {
  harness::Args args;
  args.addInt("boxsize", 64, "box side length");
  args.addInt("nboxes", 2, "boxes per direction");
  args.addInt("threads", omp_get_max_threads(), "OpenMP threads");
  try {
    if (!args.parse(argc, argv)) {
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const int n = static_cast<int>(args.getInt("boxsize"));
  const int nb = static_cast<int>(args.getInt("nboxes"));
  const int threads = static_cast<int>(args.getInt("threads"));

  // 1. A periodic domain decomposed into boxes, with ghost cells sized for
  //    the 4th-order face stencil.
  grid::ProblemDomain domain(grid::Box::cube(n * nb));
  grid::DisjointBoxLayout layout(domain, n);
  grid::LevelData phi0(layout, kernels::kNumComp, kernels::kNumGhost);
  grid::LevelData phi1(layout, kernels::kNumComp, kernels::kNumGhost);

  // 2. Smooth initial data; initializeExemplar also exchanges ghosts.
  kernels::initializeExemplar(phi0);
  std::cout << "domain " << domain.box() << " in " << layout.size()
            << " boxes of " << n << "^3, " << threads << " thread(s)\n";

  // 3. Evaluate with the series-of-loops baseline (Chombo's idiom).
  core::FluxDivRunner baseline(
      core::makeBaseline(core::ParallelGranularity::OverBoxes), threads);
  harness::Timer t1;
  baseline.run(phi0, phi1);
  std::cout << "Baseline-CLO: P>=Box        " << t1.seconds() << " s, "
            << "temp/thread "
            << baseline.maxPeakWorkspaceBytes() / 1024 << " KiB\n";

  // 4. Evaluate with the paper's winner: shifted/fused overlapped tiles.
  grid::LevelData phi1b(layout, kernels::kNumComp, kernels::kNumGhost);
  core::FluxDivRunner best(
      core::makeOverlapped(core::IntraTileSchedule::ShiftFuse, 8,
                           core::ParallelGranularity::WithinBox),
      threads);
  harness::Timer t2;
  best.run(phi0, phi1b);
  std::cout << "Shift-Fuse OT-8: P<Box      " << t2.seconds() << " s, "
            << "temp/thread " << best.maxPeakWorkspaceBytes() / 1024
            << " KiB\n";

  // 5. Same answer, different schedule.
  const grid::Real diff = grid::LevelData::maxAbsDiffValid(phi1, phi1b);
  std::cout << "max |baseline - overlapped| = " << diff << '\n';
  return diff < 1e-12 ? 0 : 1;
}
